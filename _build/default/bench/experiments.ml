(* The experiment suite: one entry per tutorial claim (see DESIGN.md §4
   and EXPERIMENTS.md). Each experiment prints the table/series that
   plays the role of the corresponding "figure". *)

open Common
module Policy = Lsm_compaction.Policy
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Stats = Lsm_core.Stats
module Version = Lsm_core.Version
module Rng = Lsm_util.Rng
module Histogram = Lsm_util.Histogram
module Point_filter = Lsm_filter.Point_filter
module Range_filter = Lsm_filter.Range_filter
module Memtable = Lsm_memtable.Memtable
open Lsm_workload

(* ------------------------------------------------------------------ *)
(* E1: leveling vs tiering vs lazy-leveling across size ratios          *)
(* ------------------------------------------------------------------ *)

let e1 () =
  banner "E1" "data layout x size ratio: the write/read tradeoff"
    "tiering cuts write amplification, leveling cuts lookup cost; lazy \
     leveling sits between; T navigates each curve (tutorial S2.1.2/S2.2.2)";
  let total = 40_000 and unique = 8_000 in
  let rows = ref [] in
  List.iter
    (fun (lname, mk) ->
      List.iter
        (fun t ->
          let dev = Device.in_memory () in
          let db = Db.open_db ~config:(bench_config ~compaction:(mk t) ()) ~dev () in
          ingest db ~total ~unique;
          let lc = measure_lookups db ~unique in
          rows :=
            [
              lname; i0 t; f2 (Db.write_amplification db);
              f3 lc.present_pages; f3 lc.absent_pages; i0 (total_runs db);
              f2 (Db.space_amplification db);
            ]
            :: !rows;
          Db.close db)
        [ 2; 4; 6; 8 ])
    [
      ("leveling", fun t -> Policy.leveled ~size_ratio:t ());
      ("tiering", fun t -> Policy.tiered ~size_ratio:t ());
      ("lazy-leveling", fun t -> Policy.lazy_leveled ~size_ratio:t ());
    ];
  table
    [ "layout"; "T"; "WA"; "pages/get(hit)"; "pages/get(miss)"; "runs"; "space-amp" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E2: memtable implementations                                         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  banner "E2" "buffer implementation vs workload"
    "vector buffers ingest fastest write-only but collapse under \
     interleaved reads; skiplists balance both (S2.2.1, RocksDB memtables)";
  let n = 60_000 in
  let rows = ref [] in
  List.iter
    (fun kind ->
      let run mixed =
        let dev = Device.in_memory () in
        let config = { (bench_config ~buffer:(256 * 1024) ()) with Config.memtable = kind } in
        let db = Db.open_db ~config ~dev () in
        let rng = Rng.create 3 in
        let ops () =
          for i = 1 to n do
            Db.put db ~key:(key (Rng.int rng 20_000)) (value 64 rng);
            if mixed && i mod 2 = 0 then ignore (Db.get db (key (Rng.int rng 20_000)))
          done
        in
        let throughput = time_ops ops (if mixed then n + (n / 2) else n) in
        Db.close db;
        throughput
      in
      rows :=
        [ Memtable.kind_name kind; f1 (run false); f1 (run true) ] :: !rows)
    Memtable.all_kinds;
  table [ "buffer"; "write-only ops/s"; "mixed 2:1 ops/s" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E3: Monkey vs uniform filter allocation                              *)
(* ------------------------------------------------------------------ *)

let e3 () =
  banner "E3" "filter memory allocation: Monkey vs uniform bits/key"
    "for the same total filter memory, Monkey's per-level allocation gives \
     fewer superfluous probes on zero-result lookups (S2.1.3, Monkey)";
  let total = 40_000 and unique = 20_000 in
  let rows = ref [] in
  List.iter
    (fun bits ->
      let run monkey =
        let dev = Device.in_memory () in
        let budget = int_of_float (bits *. float_of_int unique) in
        let config =
          {
            (bench_config ~compaction:(Policy.tiered ~size_ratio:4 ()) ()) with
            Config.filter = Point_filter.Bloom { bits_per_key = bits };
            monkey_filters = monkey;
            filter_memory_bits = (if monkey then budget else 0);
          }
        in
        let db = Db.open_db ~config ~dev () in
        ingest db ~total ~unique;
        let lc = measure_lookups ~lookups:4000 db ~unique in
        (* actual filter memory in use *)
        let v = Db.version db in
        ignore v;
        Db.close db;
        lc
      in
      let u = run false and m = run true in
      rows :=
        [
          f1 bits; f3 u.absent_pages; f3 m.absent_pages; f4 u.fp_rate; f4 m.fp_rate;
          f3 u.present_pages; f3 m.present_pages;
        ]
        :: !rows)
    [ 2.0; 4.0; 6.0; 10.0 ];
  table
    [
      "bits/key"; "miss pages (uniform)"; "miss pages (monkey)"; "fp/lookup (uniform)";
      "fp/lookup (monkey)"; "hit pages (uniform)"; "hit pages (monkey)";
    ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E4: range filters for short and long scans                           *)
(* ------------------------------------------------------------------ *)

let e4 () =
  banner "E4" "range-filter classes vs range length"
    "prefix filters answer long common-prefix ranges; SuRF handles both via \
     variable prefixes; Rosetta excels at short ranges (S2.1.3)";
  (* Part 1: sparse 8-byte binary keyspace (every 64th integer exists):
     gap windows of growing width. Rosetta's bit-prefix hierarchy and
     SuRF's distinguishing prefixes reject these; a byte-prefix filter
     cannot (all windows share prefixes with live keys). *)
  let n = 8_000 in
  let keys = List.init n (fun i -> Runner.keyspace_key Spec.Binary8 (i * 64)) in
  let policies =
    [
      ("none", Range_filter.No_range_filter);
      ("prefix(6B)", Range_filter.Prefix { prefix_len = 6; bits_per_key = 14.0 });
      ("surf+2", Range_filter.Surf { max_prefix = 8; suffix_len = 2 });
      ("surf+8", Range_filter.Surf { max_prefix = 8; suffix_len = 8 });
      ("rosetta", Range_filter.Rosetta { levels = 64; bits_per_key = 10.0 });
    ]
  in
  let rng = Rng.create 11 in
  let gap_windows width =
    (* windows centered in gaps: [base+8, base+8+width) with width < 56 *)
    List.init 400 (fun _ ->
        let i = Rng.int rng (n - 1) in
        let base = (i * 64) + 8 in
        ( Runner.keyspace_key Spec.Binary8 base,
          Runner.keyspace_key Spec.Binary8 (base + width) ))
  in
  let short = gap_windows 8 and long_ = gap_windows 48 in
  (* Ranges that DO contain keys, to verify no false negatives. *)
  let hit_windows =
    List.init 200 (fun _ ->
        let i = 1 + Rng.int rng (n - 2) in
        ( Runner.keyspace_key Spec.Binary8 ((i * 64) - 4),
          Runner.keyspace_key Spec.Binary8 ((i * 64) + 4) ))
  in
  let fpr f windows =
    let fps =
      List.length
        (List.filter (fun (lo, hi) -> Range_filter.may_overlap f ~lo ~hi:(Some hi)) windows)
    in
    float_of_int fps /. float_of_int (List.length windows)
  in
  let rows =
    List.map
      (fun (nm, policy) ->
        let f = Range_filter.build policy ~keys in
        let misses =
          List.length
            (List.filter
               (fun (lo, hi) -> not (Range_filter.may_overlap f ~lo ~hi:(Some hi)))
               hit_windows)
        in
        [
          nm; f3 (fpr f short); f3 (fpr f long_); i0 misses;
          Printf.sprintf "%.1f" (float_of_int (Range_filter.bit_count f) /. float_of_int n);
        ])
      policies
  in
  print_endline "(a) binary keyspace, gap windows inside shared prefixes";
  table
    [ "filter"; "FPR short(8)"; "FPR long(48)"; "false negatives"; "bits/key" ]
    rows;
  (* Part 2: structured keys "u<user>:<item>" and whole-prefix queries
     ("does this user have any data?") — the long-range membership shape
     that fixed-length prefix filters are built for [103]. Rosetta's
     8-byte projection saturates here; SuRF still works. *)
  (* User ids are long enough that neighbouring ids differ only beyond
     byte 8 - outside Rosetta's fixed projection, inside the reach of a
     13-byte prefix filter and SuRF's variable-depth prefixes. *)
  let users = 600 and items = 12 in
  let skeys =
    List.concat_map
      (fun u -> List.init items (fun i -> Printf.sprintf "user%08d:%04d" (u * 3) i))
      (List.init users Fun.id)
  in
  let present_prefix_windows =
    List.init 300 (fun j ->
        let u = (j mod users) * 3 in
        (Printf.sprintf "user%08d:" u, Printf.sprintf "user%08d;" u))
  in
  let absent_prefix_windows =
    List.init 300 (fun j ->
        let u = ((j mod users) * 3) + 1 in
        (Printf.sprintf "user%08d:" u, Printf.sprintf "user%08d;" u))
  in
  let spolicies =
    [
      ("prefix(13B)", Range_filter.Prefix { prefix_len = 13; bits_per_key = 14.0 });
      ("surf+2", Range_filter.Surf { max_prefix = 24; suffix_len = 2 });
      ("rosetta", Range_filter.Rosetta { levels = 64; bits_per_key = 10.0 });
    ]
  in
  let rows2 =
    List.map
      (fun (nm, policy) ->
        let f = Range_filter.build policy ~keys:skeys in
        let fn =
          List.length
            (List.filter
               (fun (lo, hi) -> not (Range_filter.may_overlap f ~lo ~hi:(Some hi)))
               present_prefix_windows)
        in
        [ nm; f3 (fpr f absent_prefix_windows); i0 fn ])
      spolicies
  in
  print_endline "\n(b) structured keys, whole-prefix (long-range) membership queries";
  table [ "filter"; "FPR absent-user range"; "false negatives" ] rows2;
  print_endline "\n(engine-level effect: scans skipped per 1000 empty-range scans)";
  let rows2 =
    List.map
      (fun (nm, policy) ->
        let dev = Device.in_memory () in
        let config = { (bench_config ()) with Config.range_filter = policy } in
        let db = Db.open_db ~config ~dev () in
        let rng = Rng.create 5 in
        for i = 0 to n - 1 do
          Db.put db ~key:(Runner.keyspace_key Spec.Binary8 (i * 64)) (value 32 rng)
        done;
        Db.flush db;
        let pages_before = Io_stats.pages_read ~cls:Io_stats.C_user_read (Db.io_stats db) in
        List.iter
          (fun (lo, hi) -> ignore (Db.scan db ~lo ~hi:(Some hi) ()))
          short;
        let pages = Io_stats.pages_read ~cls:Io_stats.C_user_read (Db.io_stats db) - pages_before in
        let skips = (Db.stats db).Stats.range_filter_skips in
        Db.close db;
        [ nm; i0 skips; f3 (float_of_int pages /. float_of_int (List.length short)) ])
      policies
  in
  table [ "filter"; "file probes skipped"; "pages/empty-scan" ] rows2

(* ------------------------------------------------------------------ *)
(* E5: full vs partial compaction granularity                           *)
(* ------------------------------------------------------------------ *)

let e5 () =
  banner "E5" "compaction granularity: whole-level vs single-file"
    "partial (single-file) compaction amortizes I/O into many small bursts, \
     cutting the stall tail; whole-level compaction bursts are huge (S2.2.3)";
  let total = 60_000 and unique = 12_000 in
  let rows =
    List.map
      (fun (nm, granularity) ->
        let compaction = { (Policy.leveled ~size_ratio:4 ()) with Policy.granularity } in
        let dev = Device.in_memory () in
        let db = Db.open_db ~config:(bench_config ~compaction ()) ~dev () in
        ingest db ~total ~unique;
        let s = Db.stats db in
        let h = s.Stats.compaction_burst_bytes in
        let row =
          [
            nm; i0 s.Stats.compactions; kib (Histogram.percentile h 50.0);
            kib (Histogram.percentile h 99.0); kib (Histogram.max_value h);
            f2 (Db.write_amplification db);
          ]
        in
        Db.close db;
        row)
      [ ("whole-level", Policy.Whole_level); ("single-file", Policy.Single_file) ]
  in
  table [ "granularity"; "compactions"; "burst p50"; "burst p99"; "burst max"; "WA" ] rows

(* ------------------------------------------------------------------ *)
(* E6: file-picking (data movement) policies                            *)
(* ------------------------------------------------------------------ *)

let e6 () =
  banner "E6" "data-movement policy under a delete-heavy workload"
    "least-overlap minimizes WA; most-tombstones purges deletes early, \
     trading some WA for space (S2.2.3)";
  let rows =
    List.map
      (fun (nm, movement) ->
        let compaction = { (Policy.leveled ~size_ratio:4 ()) with Policy.movement } in
        let dev = Device.in_memory () in
        let db = Db.open_db ~config:(bench_config ~compaction ()) ~dev () in
        let rng = Rng.create 9 in
        for _ = 1 to 50_000 do
          let k = key (Rng.int rng 10_000) in
          if Rng.bernoulli rng 0.25 then Db.delete db k else Db.put db ~key:k (value 64 rng)
        done;
        Db.flush db;
        let tombs =
          List.fold_left
            (fun a (f : Lsm_sstable.Table_meta.t) -> a + f.point_tombstones)
            0
            (Version.all_files (Db.version db))
        in
        let row =
          [
            nm; f2 (Db.write_amplification db); i0 tombs;
            f2 (Db.space_amplification db); i0 (Db.stats db).Stats.compactions;
          ]
        in
        Db.close db;
        row)
      [
        ("round-robin", Policy.Round_robin);
        ("least-overlap", Policy.Least_overlap);
        ("oldest", Policy.Oldest_file);
        ("most-tombstones", Policy.Most_tombstones);
      ]
  in
  table [ "movement"; "WA"; "live tombstones"; "space-amp"; "compactions" ] rows

(* ------------------------------------------------------------------ *)
(* E7: key-value separation (WiscKey)                                   *)
(* ------------------------------------------------------------------ *)

let e7 () =
  banner "E7" "key-value separation vs value size"
    "separating values into a log slashes WA for large values (paper cites \
     ~4x) and speeds loading; point reads pay one extra log read (S2.2.2)";
  let rows = ref [] in
  List.iter
    (fun vsize ->
      let volume = 6 * (1 lsl 20) in
      let total = volume / (vsize + 14) in
      let unique = max 1 (total / 4) in
      let run mk name =
        let dev = Device.in_memory () in
        let store = mk dev in
        let rng = Rng.create 4 in
        let load () =
          for _ = 1 to total do
            store.Kv_store.put ~key:(key (Rng.int rng unique)) (value vsize rng)
          done;
          store.Kv_store.flush ()
        in
        let load_rate = time_ops load total in
        let io = store.Kv_store.io_stats () in
        let engine_written =
          Io_stats.bytes_written ~cls:Io_stats.C_flush io
          + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write io
          + Io_stats.bytes_written ~cls:Io_stats.C_user_write io
        in
        let wa = float_of_int engine_written /. float_of_int (store.Kv_store.user_bytes ()) in
        let read_pages_before = Io_stats.pages_read ~cls:Io_stats.C_user_read io in
        for i = 1 to 1000 do
          ignore (store.Kv_store.get (key (i mod unique)))
        done;
        let read_pages =
          Io_stats.pages_read ~cls:Io_stats.C_user_read (store.Kv_store.io_stats ())
          - read_pages_before
        in
        rows :=
          [ i0 vsize; name; f2 wa; f1 load_rate; f3 (float_of_int read_pages /. 1000.0) ]
          :: !rows
      in
      run
        (fun dev -> Kv_store.of_db (Db.open_db ~config:(bench_config ()) ~dev ()))
        "standard";
      run
        (fun dev ->
          Lsm_kvsep.Kv_db.to_kv_store
            (Lsm_kvsep.Kv_db.open_db ~config:(bench_config ()) ~value_threshold:100
               ~segment_bytes:(256 * 1024) ~dev ()))
        "wisckey")
    [ 64; 256; 1024 ];
  table [ "value B"; "store"; "WA"; "load ops/s"; "pages/get" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E8: fragmented LSM (guards)                                          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  banner "E8" "fragmented (guarded) LSM vs classical layouts"
    "guard-partitioned compaction appends instead of rewriting the next \
     level, cutting data movement and raising ingest throughput (S2.2.2, \
     PebblesDB); reads pay for extra fragments";
  let total = 60_000 and unique = 12_000 in
  let run_std name compaction =
    let dev = Device.in_memory () in
    let config = { (bench_config ~compaction ()) with Config.wal_enabled = false } in
    let db = Db.open_db ~config ~dev () in
    let rate = time_ops (fun () -> ingest db ~total ~unique) total in
    let lc = measure_lookups db ~unique in
    let row =
      [ name; f2 (Db.write_amplification db); f1 rate; f3 lc.present_pages;
        i0 (total_runs db) ]
    in
    Db.close db;
    row
  in
  let run_frag () =
    let dev = Device.in_memory () in
    let config =
      {
        Lsm_frag.Frag_db.default_config with
        write_buffer_size = 16 * 1024;
        level1_capacity = 64 * 1024;
        target_file_size = 32 * 1024;
        block_size = 1024;
        size_ratio = 4;
        level0_limit = 4;
        guard_stride_base = 2048;
      }
    in
    let db = Lsm_frag.Frag_db.create ~config ~dev () in
    let rng = Rng.create 42 in
    let load () =
      for _ = 1 to total do
        Lsm_frag.Frag_db.put db ~key:(key (Rng.int rng unique)) (value 64 rng)
      done;
      Lsm_frag.Frag_db.flush db
    in
    let rate = time_ops load total in
    let pages_before = Io_stats.pages_read ~cls:Io_stats.C_user_read (Device.stats dev) in
    let rng2 = Rng.create 7 in
    for _ = 1 to 2000 do
      ignore (Lsm_frag.Frag_db.get db (key (Rng.int rng2 unique)))
    done;
    let pages = Io_stats.pages_read ~cls:Io_stats.C_user_read (Device.stats dev) - pages_before in
    [
      "pebbles(frag)"; f2 (Lsm_frag.Frag_db.write_amplification db); f1 rate;
      f3 (float_of_int pages /. 2000.0); i0 (Lsm_frag.Frag_db.fragment_count db);
    ]
  in
  table
    [ "store"; "WA"; "ingest ops/s"; "pages/get(hit)"; "runs|frags" ]
    [
      run_std "leveled" (Policy.leveled ~size_ratio:4 ());
      run_std "tiered" (Policy.tiered ~size_ratio:4 ());
      run_frag ();
    ]

(* ------------------------------------------------------------------ *)
(* E9: the RUM tradeoff, measured                                       *)
(* ------------------------------------------------------------------ *)

let e9 () =
  banner "E9" "the RUM tradeoff: read cost vs update cost vs memory"
    "no design wins all three axes: improving reads (leveling+filters) \
     costs updates or memory; improving updates (tiering) costs reads \
     (S2.3, RUM conjecture)";
  let total = 40_000 and unique = 8_000 in
  let rows =
    List.map
      (fun (nm, compaction, filter) ->
        let dev = Device.in_memory () in
        let db = Db.open_db ~config:(bench_config ~compaction ~filter ()) ~dev () in
        ingest db ~total ~unique;
        let lc = measure_lookups db ~unique in
        let filter_bits =
          List.fold_left
            (fun acc (f : Lsm_sstable.Table_meta.t) ->
              acc + 10 * f.entries (* approximation: bits/key * entries *))
            0
            (Version.all_files (Db.version db))
        in
        let memory_kib =
          ((match filter with Point_filter.No_filter -> 0 | _ -> filter_bits / 8) + 16 * 1024)
          / 1024
        in
        let row =
          [
            nm; f3 ((lc.present_pages +. lc.absent_pages) /. 2.0);
            f2 (Db.write_amplification db); i0 memory_kib;
          ]
        in
        Db.close db;
        row)
      [
        ("read-optimized (leveled+bloom)", Policy.leveled ~size_ratio:4 (), Point_filter.default);
        ("update-optimized (tiered+bloom)", Policy.tiered ~size_ratio:4 (), Point_filter.default);
        ("memory-optimized (leveled, no filters)", Policy.leveled ~size_ratio:4 (),
         Point_filter.No_filter);
        ("balanced (lazy+bloom)", Policy.lazy_leveled ~size_ratio:4 (), Point_filter.default);
      ]
  in
  table [ "design"; "R: pages/get"; "U: write amp"; "M: memory KiB" ] rows

(* ------------------------------------------------------------------ *)
(* E10: memory allocation between buffer, filters, cache                *)
(* ------------------------------------------------------------------ *)

let e10 () =
  banner "E10" "splitting one memory budget across buffer/filter/cache"
    "the right split depends on the mix: write-heavy wants buffer, \
     read-heavy wants filters+cache; co-tuning beats any fixed split \
     (S2.1.3, S2.3.1)";
  let budget = 512 * 1024 in
  let splits =
    [ (0.70, 0.10, 0.20); (0.40, 0.20, 0.40); (0.20, 0.20, 0.60); (0.10, 0.40, 0.50) ]
  in
  let unique = 10_000 in
  let run (b, f, c) write_heavy =
    let buffer = max 4096 (int_of_float (float_of_int budget *. b)) in
    let cache = max 4096 (int_of_float (float_of_int budget *. c)) in
    let filter_bits = int_of_float (float_of_int budget *. f *. 8.0) in
    let config =
      {
        (bench_config ~buffer ~cache ~l1:(4 * buffer) ~file:(2 * buffer) ()) with
        Config.monkey_filters = true;
        filter_memory_bits = filter_bits;
      }
    in
    let dev = Device.in_memory () in
    let db = Db.open_db ~config ~dev () in
    let rng = Rng.create 2 in
    let ops = 40_000 in
    let work () =
      for _ = 1 to ops do
        if write_heavy || Rng.bernoulli rng 0.2 then
          Db.put db ~key:(key (Rng.int rng unique)) (value 64 rng)
        else ignore (Db.get db (key (Rng.int rng unique)))
      done;
      Db.flush db
    in
    let rate = time_ops work ops in
    let lc = measure_lookups ~lookups:1500 db ~unique in
    let r = (rate, lc.present_pages) in
    Db.close db;
    r
  in
  let rows =
    List.map
      (fun ((b, f, c) as split) ->
        let w_rate, w_pages = run split true in
        let r_rate, r_pages = run split false in
        [
          Printf.sprintf "%.0f/%.0f/%.0f" (100. *. b) (100. *. f) (100. *. c);
          f1 w_rate; f3 w_pages; f1 r_rate; f3 r_pages;
        ])
      splits
  in
  table
    [
      "buf/filter/cache %"; "write-heavy ops/s"; "pages/get"; "read-heavy ops/s"; "pages/get ";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: Lethe — timely persistent deletion                              *)
(* ------------------------------------------------------------------ *)

let e11 () =
  banner "E11" "delete persistence latency vs write amplification"
    "TTL-driven (FADE) compaction bounds how long tombstones (and the data \
     they hide) survive, at a modest WA premium (S2.3.3, Lethe)";
  let live_tombstones db =
    List.fold_left
      (fun a (f : Lsm_sstable.Table_meta.t) -> a + f.point_tombstones)
      0
      (Version.all_files (Db.version db))
  in
  let rows =
    List.map
      (fun (nm, movement) ->
        let compaction = { (Policy.leveled ~size_ratio:4 ()) with Policy.movement } in
        let dev = Device.in_memory () in
        let db = Db.open_db ~config:(bench_config ~compaction ()) ~dev () in
        ingest db ~total:30_000 ~unique:6_000;
        Db.major_compact db;
        (* Delete 10% of the keyspace, then watch how long the tombstones
           take to become persistent under light churn. *)
        let rng = Rng.create 13 in
        for i = 0 to 599 do
          Db.delete db (key (i * 10))
        done;
        Db.flush db;
        let rounds = ref 0 in
        while live_tombstones db > 0 && !rounds < 400 do
          incr rounds;
          for _ = 1 to 50 do
            Db.put db ~key:(Printf.sprintf "churn%08d" (Rng.int rng 1_000_000)) (value 64 rng)
          done;
          Db.flush db
        done;
        let persisted = if live_tombstones db = 0 then i0 !rounds else "never (>400)" in
        let row = [ nm; persisted; f2 (Db.write_amplification db) ] in
        Db.close db;
        row)
      [
        ("least-overlap (default)", Policy.Least_overlap);
        ("FADE ttl=2000", Policy.Expired_ttl { ttl = 2000 });
        ("FADE ttl=500", Policy.Expired_ttl { ttl = 500 });
      ]
  in
  table [ "policy"; "rounds to persist"; "WA" ] rows

(* ------------------------------------------------------------------ *)
(* E12: robust tuning under workload drift                              *)
(* ------------------------------------------------------------------ *)

let e12 () =
  banner "E12" "nominal vs robust tuning when the workload drifts"
    "the min-max (Endure-style) tuning gives up little at the expected \
     workload but avoids the cliff when the mix shifts (S2.3.2)";
  let module Model = Lsm_cost.Model in
  let expected =
    {
      Model.entries = 20_000_000;
      entry_bytes = 128;
      page_bytes = 4096;
      f_insert = 0.85;
      f_point_lookup_hit = 0.05;
      f_point_lookup_miss = 0.05;
      f_short_scan = 0.05;
      f_long_scan = 0.0;
      long_scan_pages = 64.0;
    }
  in
  let mem_bits = 8.0 *. float_of_int (32 * 1024 * 1024) in
  let nominal = Lsm_cost.Navigator.best ~total_memory_bits:mem_bits expected in
  let robust = Lsm_cost.Robust.robust_best ~rho:0.5 ~total_memory_bits:mem_bits expected in
  Printf.printf "nominal design: %s\n" (Model.describe_design nominal.Lsm_cost.Navigator.design);
  Printf.printf "robust design : %s\n\n" (Model.describe_design robust.Lsm_cost.Navigator.design);
  let executed =
    [
      ("as expected", expected);
      ( "reads +20%",
        { expected with f_insert = 0.65; f_point_lookup_hit = 0.20; f_point_lookup_miss = 0.10 } );
      ( "scans appear",
        { expected with f_insert = 0.60; f_short_scan = 0.30 } );
      ( "read storm",
        { expected with f_insert = 0.35; f_point_lookup_hit = 0.40; f_point_lookup_miss = 0.20 } );
    ]
  in
  let rows =
    List.map
      (fun (nm, w) ->
        let cn = Model.mixed_cost nominal.Lsm_cost.Navigator.design w in
        let cr = Model.mixed_cost robust.Lsm_cost.Navigator.design w in
        [ nm; f4 cn; f4 cr; (if cr < cn then "robust" else "nominal") ])
      executed
  in
  table [ "executed workload"; "nominal-tuned cost"; "robust-tuned cost"; "winner" ] rows

(* ------------------------------------------------------------------ *)
(* E13: compactions vs the block cache                                  *)
(* ------------------------------------------------------------------ *)

let e13 () =
  banner "E13" "compaction-induced cache invalidation and refill"
    "compactions delete the files whose blocks are hot, evicting them; \
     prefetching output blocks after compaction (Leaper-style) restores \
     the hit rate (S2.1.3)";
  let unique = 6_000 in
  let run refill =
    let config =
      {
        (bench_config ~cache:(256 * 1024) ()) with
        Config.cache_refill_after_compaction = refill;
      }
    in
    let dev = Device.in_memory () in
    let db = Db.open_db ~config ~dev () in
    ingest db ~total:20_000 ~unique;
    let cache = Db.block_cache db in
    let z = Lsm_util.Zipf.create unique in
    let rng = Rng.create 17 in
    (* Warm the cache with hot reads. *)
    for _ = 1 to 8_000 do
      ignore (Db.get db (key (Lsm_util.Zipf.next_scrambled z rng)))
    done;
    Lsm_storage.Block_cache.reset_stats cache;
    (* Interleave hot reads with write churn that triggers compactions. *)
    for i = 1 to 20_000 do
      ignore (Db.get db (key (Lsm_util.Zipf.next_scrambled z rng)));
      if i mod 2 = 0 then Db.put db ~key:(key (Rng.int rng unique)) (value 64 rng)
    done;
    let hit = Lsm_storage.Block_cache.hit_rate cache in
    let evicted = Lsm_storage.Block_cache.evictions cache in
    let comps = (Db.stats db).Stats.compactions in
    Db.close db;
    [ (if refill then "refill on (Leaper-style)" else "refill off"); f3 hit; i0 evicted; i0 comps ]
  in
  table [ "mode"; "hit rate under churn"; "evictions"; "compactions" ] [ run false; run true ]

(* ------------------------------------------------------------------ *)
(* E14: the layout continuum (per-level run caps)                       *)
(* ------------------------------------------------------------------ *)

let e14 () =
  banner "E14" "the data-layout continuum: per-level run caps"
    "between all-leveled and all-tiered lies a continuum of per-level run \
     caps (LSM-Bush direction); WA falls and lookup cost rises monotonically \
     along it (S2.3.1)";
  let total = 40_000 and unique = 8_000 in
  let caps_points =
    [
      ("leveled [1,1,1,1]", [| 1; 1; 1; 1 |]);
      ("hybrid  [4,1,1,1]", [| 4; 1; 1; 1 |]);
      ("hybrid  [4,4,1,1]", [| 4; 4; 1; 1 |]);
      ("hybrid  [4,4,4,1]", [| 4; 4; 4; 1 |]);
      ("tiered  [4,4,4,4]", [| 4; 4; 4; 4 |]);
    ]
  in
  let w =
    {
      Lsm_cost.Model.entries = unique;
      entry_bytes = 78;
      page_bytes = 1024;
      f_insert = 1.0;
      f_point_lookup_hit = 0.0;
      f_point_lookup_miss = 0.0;
      f_short_scan = 0.0;
      f_long_scan = 0.0;
      long_scan_pages = 16.0;
    }
  in
  let rows =
    List.map
      (fun (nm, caps) ->
        let compaction =
          { (Policy.leveled ~size_ratio:4 ()) with Policy.layout = Policy.Run_caps caps }
        in
        let dev = Device.in_memory () in
        let db = Db.open_db ~config:(bench_config ~compaction ()) ~dev () in
        ingest db ~total ~unique;
        let lc = measure_lookups db ~unique in
        let mw, mr =
          Lsm_cost.Model.run_caps_cost ~caps ~size_ratio:4 ~buffer_bytes:(16 * 1024)
            ~filter_bits_per_key:10.0 w
        in
        let row =
          [
            nm; f2 (Db.write_amplification db); f3 lc.present_pages; i0 (total_runs db);
            f3 mw; f4 mr;
          ]
        in
        Db.close db;
        row)
      caps_points
  in
  table
    [ "run caps"; "WA (measured)"; "pages/get"; "runs"; "model write"; "model miss" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: compaction throttling and write-stall stability                 *)
(* ------------------------------------------------------------------ *)

let e15 () =
  banner "E15" "ablation: compaction throttling (stability)"
    "capping compaction traffic per write round spreads merge work across \
     writes, shrinking the stall tail at the same total work (S2.2.3 SILK / \
     S2.3.2 Luo & Carey)";
  let rows =
    List.map
      (fun (nm, cap) ->
        let dev = Device.in_memory () in
        let config =
          { (bench_config ()) with Config.compaction_bytes_per_round = cap }
        in
        let db = Db.open_db ~config ~dev () in
        ingest db ~total:50_000 ~unique:10_000;
        let h = (Db.stats db).Stats.stall_burst_bytes in
        let row =
          [
            nm; kib (Histogram.percentile h 50.0); kib (Histogram.percentile h 99.0);
            kib (Histogram.max_value h); f2 (Db.write_amplification db);
            i0 (total_runs db);
          ]
        in
        Db.close db;
        row)
      [
        ("unthrottled", None);
        ("cap 256K/round", Some (256 * 1024));
        ("cap 64K/round", Some (64 * 1024));
      ]
  in
  table [ "mode"; "stall p50"; "stall p99"; "stall max"; "WA"; "runs at end" ] rows

(* ------------------------------------------------------------------ *)
(* E16: trivial-move ablation                                           *)
(* ------------------------------------------------------------------ *)

let e16 () =
  banner "E16" "ablation: trivial file moves"
    "moving non-overlapping files down without rewriting them eliminates \
     merge I/O for sequential ingest and helps skewed ingest too (RocksDB \
     trivial move; a data-movement-policy point of S2.2.4)";
  let run nm allow sequential =
    let dev = Device.in_memory () in
    let config = { (bench_config ()) with Config.allow_trivial_move = allow } in
    let db = Db.open_db ~config ~dev () in
    let rng = Rng.create 2 in
    for i = 0 to 39_999 do
      let k = if sequential then i else Rng.int rng 8_000 in
      Db.put db ~key:(key k) (value 64 rng)
    done;
    Db.flush db;
    let s = Db.stats db in
    let row =
      [ nm; f2 (Db.write_amplification db); i0 s.Stats.compactions; i0 s.Stats.trivial_moves ]
    in
    Db.close db;
    row
  in
  table
    [ "workload/mode"; "WA"; "compactions"; "trivial moves" ]
    [
      run "sequential, moves on" true true;
      run "sequential, moves off" false true;
      run "random, moves on" true false;
      run "random, moves off" false false;
    ]

(* ------------------------------------------------------------------ *)
(* E17: block compression                                               *)
(* ------------------------------------------------------------------ *)

let e17 () =
  banner "E17" "ablation: block compression"
    "compressing data blocks cuts device bytes (space and write \
     amplification) for compressible values at a CPU cost; incompressible \
     values fall back to raw storage";
  let run nm compression compressible =
    let dev = Device.in_memory () in
    let config = { (bench_config ()) with Config.compression } in
    let db = Db.open_db ~config ~dev () in
    let rng = Rng.create 8 in
    let total = 30_000 and unique = 6_000 in
    let mk_value i =
      if compressible then Printf.sprintf "city=springfield;state=%02d;zip=%05d;" (i mod 50) i
      else Rng.bytes rng 38
    in
    let load () =
      for i = 1 to total do
        Db.put db ~key:(key (Rng.int rng unique)) (mk_value i)
      done;
      Db.flush db
    in
    let rate = time_ops load total in
    let lc = measure_lookups ~lookups:1000 db ~unique in
    let row =
      [
        nm; i0 (Version.total_bytes (Db.version db) / 1024); f2 (Db.write_amplification db);
        f1 rate; f3 lc.present_pages;
      ]
    in
    Db.close db;
    row
  in
  table
    [ "values/mode"; "tree KiB"; "WA"; "ingest ops/s"; "pages/get" ]
    [
      run "structured, raw" Lsm_sstable.Sstable.C_none true;
      run "structured, lz" Lsm_sstable.Sstable.C_lz true;
      run "random, raw" Lsm_sstable.Sstable.C_none false;
      run "random, lz" Lsm_sstable.Sstable.C_lz false;
    ]

(* ------------------------------------------------------------------ *)
(* E18: point-filter shootout                                           *)
(* ------------------------------------------------------------------ *)

let e18 () =
  banner "E18" "point-filter designs: bloom vs blocked vs cuckoo vs xor"
    "beyond the classic Bloom filter, blocked variants trade FPR for cache \
     locality, cuckoo filters add deletability (Chucky), and static xor \
     filters pack tighter - the replacement space S2.1.3 sketches";
  let n = 20_000 in
  let keys = List.init n (fun i -> Printf.sprintf "fk%08d" i) in
  let rows =
    List.map
      (fun (nm, policy) ->
        let f = Lsm_filter.Point_filter.create policy ~expected:n in
        List.iter (Lsm_filter.Point_filter.add f) keys;
        let encoded = Lsm_filter.Point_filter.encode f in
        let g = Lsm_filter.Point_filter.decode encoded in
        let fp = ref 0 in
        let probes = 40_000 in
        for i = 0 to probes - 1 do
          if Lsm_filter.Point_filter.mem g (Printf.sprintf "no%08d" i) then incr fp
        done;
        let t0 = Sys.time () in
        for i = 0 to probes - 1 do
          ignore (Lsm_filter.Point_filter.mem g (Printf.sprintf "fk%08d" (i mod n)))
        done;
        let dt = Sys.time () -. t0 in
        [
          nm;
          f2 (float_of_int (Lsm_filter.Point_filter.bit_count g) /. float_of_int n);
          f4 (float_of_int !fp /. float_of_int probes);
          f1 (dt /. float_of_int probes *. 1e9);
        ])
      [
        ("bloom 10b/key", Lsm_filter.Point_filter.Bloom { bits_per_key = 10.0 });
        ("blocked 10b/key", Lsm_filter.Point_filter.Blocked_bloom { bits_per_key = 10.0 });
        ("cuckoo 12b fp", Lsm_filter.Point_filter.Cuckoo { fingerprint_bits = 12 });
        ("xor 8b fp", Lsm_filter.Point_filter.Xor);
      ]
  in
  table [ "filter"; "bits/key"; "FPR"; "probe ns" ] rows

(* ------------------------------------------------------------------ *)
(* E19: adaptive memory management across a workload shift              *)
(* ------------------------------------------------------------------ *)

let e19 () =
  banner "E19" "adaptive buffer/cache split across a workload shift"
    "no static split wins both phases of a shifting workload; an epoch \
     controller that moves memory toward the side paying more device I/O \
     tracks the shift (S2.3.1, Luo & Carey's adaptive memory management)";
  let total_mem = 512 * 1024 in
  let unique = 8_000 in
  let phase db rng write_heavy ops =
    for _ = 1 to ops do
      if write_heavy || Rng.bernoulli rng 0.1 then
        Db.put db ~key:(key (Rng.int rng unique)) (value 64 rng)
      else ignore (Db.get db (key (Rng.int rng unique)))
    done
  in
  let total_io db =
    let st = Db.io_stats db in
    Io_stats.bytes_written ~cls:Io_stats.C_flush st
    + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write st
    + Io_stats.bytes_read ~cls:Io_stats.C_compaction_read st
    + Io_stats.bytes_read ~cls:Io_stats.C_user_read st
  in
  let run nm mode =
    let dev = Device.in_memory () in
    let buffer, cache =
      match mode with
      | `Static f -> (int_of_float (float_of_int total_mem *. f),
                      total_mem - int_of_float (float_of_int total_mem *. f))
      | `Adaptive -> (total_mem / 2, total_mem / 2)
    in
    let config = bench_config ~buffer ~cache ~l1:(128 * 1024) ~file:(64 * 1024) () in
    let db = Db.open_db ~config ~dev () in
    let ctrl =
      match mode with
      | `Adaptive -> Some (Lsm_core.Adaptive_memory.create ~db ~total_bytes:total_mem ())
      | `Static _ -> None
    in
    let rng = Rng.create 21 in
    let epoch_hook () = Option.iter Lsm_core.Adaptive_memory.epoch ctrl in
    let phased write_heavy ops =
      let chunk = 1000 in
      let rec go left =
        if left > 0 then begin
          phase db rng write_heavy (min chunk left);
          epoch_hook ();
          go (left - chunk)
        end
      in
      go ops
    in
    phased true 20_000;
    phased false 20_000;
    phased true 20_000;
    let io = total_io db in
    let extra =
      match ctrl with
      | Some c ->
        Printf.sprintf "%dK/%dK after %d moves"
          (Lsm_core.Adaptive_memory.buffer_bytes c / 1024)
          (Lsm_core.Adaptive_memory.cache_bytes c / 1024)
          (Lsm_core.Adaptive_memory.moves_to_buffer c
          + Lsm_core.Adaptive_memory.moves_to_cache c)
      | None -> Printf.sprintf "%dK/%dK fixed" (buffer / 1024) (cache / 1024)
    in
    Db.close db;
    [ nm; i0 (io / 1024); extra ]
  in
  table
    [ "configuration"; "total device IO (KiB)"; "final buffer/cache" ]
    [
      run "static buffer-heavy 75/25" (`Static 0.75);
      run "static cache-heavy 25/75" (`Static 0.25);
      run "static balanced 50/50" (`Static 0.5);
      run "adaptive (epoch=1000 ops)" `Adaptive;
    ]

(* ------------------------------------------------------------------ *)
(* E20: the Compactionary - named production strategies, one table      *)
(* ------------------------------------------------------------------ *)

let e20 () =
  banner "E20" "the compactionary: production strategies as design-space points"
    "every production compaction strategy is a point in the four-primitive \
     space; running them side by side on one workload exposes where each \
     sits on the write/read/space tradeoff (S2.2.4, Compactionary [111])";
  let total = 40_000 and unique = 8_000 in
  let rows =
    List.map
      (fun (nm, _desc, policy) ->
        let policy = { policy with Lsm_compaction.Policy.size_ratio = 4; level0_limit = 3 } in
        let policy =
          (* keep layouts consistent with the reduced T *)
          match policy.Lsm_compaction.Policy.layout with
          | Lsm_compaction.Policy.Tiering _ ->
            { policy with Lsm_compaction.Policy.layout = Lsm_compaction.Policy.Tiering { runs = 4 } }
          | Lsm_compaction.Policy.Lazy_leveling _ ->
            { policy with
              Lsm_compaction.Policy.layout = Lsm_compaction.Policy.Lazy_leveling { runs = 4 } }
          | Lsm_compaction.Policy.Hybrid { tiered_levels; _ } ->
            { policy with
              Lsm_compaction.Policy.layout =
                Lsm_compaction.Policy.Hybrid { tiered_levels; runs = 4 } }
          | _ -> policy
        in
        let dev = Device.in_memory () in
        let db = Db.open_db ~config:(bench_config ~compaction:policy ()) ~dev () in
        ingest db ~total ~unique;
        let lc = measure_lookups ~lookups:1500 db ~unique in
        let row =
          [
            nm; f2 (Db.write_amplification db); f3 lc.present_pages; i0 (total_runs db);
            f2 (Db.space_amplification db);
          ]
        in
        Db.close db;
        row)
      Lsm_compaction.Compactionary.all
  in
  table [ "strategy"; "WA"; "pages/get"; "runs"; "space-amp" ] rows

(* ------------------------------------------------------------------ *)

let all : (string * string * (unit -> unit)) list =
  [
    ("E1", "layout x size ratio tradeoff", e1);
    ("E2", "memtable implementations", e2);
    ("E3", "Monkey filter allocation", e3);
    ("E4", "range filters", e4);
    ("E5", "compaction granularity", e5);
    ("E6", "data-movement policies", e6);
    ("E7", "key-value separation", e7);
    ("E8", "fragmented LSM", e8);
    ("E9", "RUM tradeoff", e9);
    ("E10", "memory allocation split", e10);
    ("E11", "Lethe timely deletion", e11);
    ("E12", "robust tuning", e12);
    ("E13", "cache vs compaction", e13);
    ("E14", "layout continuum", e14);
    ("E15", "compaction throttling (ablation)", e15);
    ("E16", "trivial moves (ablation)", e16);
    ("E17", "block compression (ablation)", e17);
    ("E18", "point-filter shootout", e18);
    ("E19", "adaptive memory (shift tracking)", e19);
    ("E20", "compactionary shootout", e20);
  ]
