(* Shared plumbing for the experiment harness: engine construction at
   bench scale, ingestion drivers, lookup cost probes, and table
   rendering. *)

module Policy = Lsm_compaction.Policy
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Stats = Lsm_core.Stats
module Rng = Lsm_util.Rng
module Zipf = Lsm_util.Zipf
module Histogram = Lsm_util.Histogram

(* Bench-scale knobs: small enough that a full sweep finishes in minutes,
   large enough that trees reach 3+ levels and compaction dominates. *)
let bench_config ?(compaction = Policy.leveled ~size_ratio:4 ()) ?(block_size = 1024)
    ?(buffer = 16 * 1024) ?(l1 = 64 * 1024) ?(file = 32 * 1024) ?(cache = 1 lsl 20)
    ?(filter = Lsm_filter.Point_filter.default) () =
  {
    Config.default with
    write_buffer_size = buffer;
    level1_capacity = l1;
    target_file_size = file;
    block_size;
    block_cache_bytes = cache;
    compaction;
    filter;
    wal_sync_every_write = false;
  }

let key i = Printf.sprintf "user%010d" i
let value size rng = Rng.bytes rng size

(* Ingest [total] puts over [unique] distinct keys (uniform). *)
let ingest ?(value_size = 64) ?(seed = 42) db ~total ~unique =
  let rng = Rng.create seed in
  for _ = 1 to total do
    Db.put db ~key:(key (Rng.int rng unique)) (value value_size rng)
  done;
  Db.flush db

(* Ingest zipfian-skewed updates. *)
let ingest_zipf ?(value_size = 64) ?(seed = 42) ?(theta = 0.99) db ~total ~unique =
  let rng = Rng.create seed in
  let z = Zipf.create ~theta unique in
  for _ = 1 to total do
    Db.put db ~key:(key (Zipf.next_scrambled z rng)) (value value_size rng)
  done;
  Db.flush db

(* Average device pages read per point lookup, split into lookups of
   present keys and of absent keys (the filter-sensitive case). *)
type lookup_cost = {
  present_pages : float;
  absent_pages : float;
  present_found : int;
  fp_rate : float;  (** filter false positives per absent lookup *)
}

let measure_lookups ?(lookups = 2000) ?(seed = 7) db ~unique =
  let rng = Rng.create seed in
  let stats = Db.stats db in
  let pages () = Io_stats.pages_read ~cls:Io_stats.C_user_read (Db.io_stats db) in
  let before = pages () in
  let found = ref 0 in
  for _ = 1 to lookups do
    if Db.get db (key (Rng.int rng unique)) <> None then incr found
  done;
  let mid = pages () in
  let fp_before = stats.Stats.filter_false_positives in
  (* Absent keys must fall inside the tables' key range, else the fence
     check rejects them before the filter is even probed. *)
  for i = 1 to lookups do
    ignore (Db.get db (key (i mod unique) ^ "x"))
  done;
  let after = pages () in
  let fp_after = stats.Stats.filter_false_positives in
  {
    present_pages = float_of_int (mid - before) /. float_of_int lookups;
    absent_pages = float_of_int (after - mid) /. float_of_int lookups;
    present_found = !found;
    fp_rate = float_of_int (fp_after - fp_before) /. float_of_int lookups;
  }

let total_runs db =
  let v = Db.version db in
  let n = ref 0 in
  for l = 0 to Lsm_core.Version.max_levels - 1 do
    n := !n + Lsm_core.Version.run_count v l
  done;
  !n

let device_write_bytes db =
  let st = Db.io_stats db in
  Io_stats.bytes_written ~cls:Io_stats.C_flush st
  + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write st

(* ---------------- table rendering ---------------- *)

let banner id title claim =
  Printf.printf "\n==== %s: %s ====\n" id title;
  Printf.printf "claim: %s\n\n" claim

let table header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header) rows
  in
  let render row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  print_endline (render header);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun r -> print_endline (render r)) rows;
  flush stdout

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let i0 = string_of_int
let kib b = Printf.sprintf "%dK" (b / 1024)

let time_ops f ops =
  let t0 = Sys.time () in
  f ();
  let dt = Sys.time () -. t0 in
  if dt <= 0.0 then infinity else float_of_int ops /. dt
