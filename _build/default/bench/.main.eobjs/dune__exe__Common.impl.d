bench/common.ml: List Lsm_compaction Lsm_core Lsm_filter Lsm_storage Lsm_util Printf String Sys
