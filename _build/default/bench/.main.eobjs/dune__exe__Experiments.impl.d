bench/experiments.ml: Common Fun Kv_store List Lsm_compaction Lsm_core Lsm_cost Lsm_filter Lsm_frag Lsm_kvsep Lsm_memtable Lsm_sstable Lsm_storage Lsm_util Lsm_workload Option Printf Runner Spec Sys
