bench/main.mli:
