bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Lsm_filter Lsm_memtable Lsm_record Lsm_sstable Lsm_util Measure Printf Staged String Test Time Toolkit
