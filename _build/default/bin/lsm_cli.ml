(* lsm_cli — drive the engine from the command line.

   Subcommands:
     bench   run a workload preset against a chosen design and print metrics
     advise  cost-model recommendation (+ robust variant) for a described workload
     tree    load synthetic data and print the resulting tree shape
     demo    tiny put/get/scan session against a directory-backed store

   Examples:
     dune exec bin/lsm_cli.exe -- bench --workload ycsb-a --layout tiered
     dune exec bin/lsm_cli.exe -- advise --inserts 0.8 --reads 0.15 --scans 0.05
     dune exec bin/lsm_cli.exe -- tree --keys 100000 --layout lazy
     dune exec bin/lsm_cli.exe -- demo --dir /tmp/lsm-demo *)

open Cmdliner
module Policy = Lsm_compaction.Policy
module Device = Lsm_storage.Device
module Db = Lsm_core.Db
open Lsm_workload

let layout_conv =
  Arg.enum
    [
      ("leveled", `Leveled); ("tiered", `Tiered); ("lazy", `Lazy); ("hybrid", `Hybrid);
    ]

let policy_of_layout ~size_ratio = function
  | `Leveled -> Policy.leveled ~size_ratio ()
  | `Tiered -> Policy.tiered ~size_ratio ()
  | `Lazy -> Policy.lazy_leveled ~size_ratio ()
  | `Hybrid ->
    { (Policy.leveled ~size_ratio ()) with
      Policy.layout = Policy.Hybrid { tiered_levels = 2; runs = size_ratio } }

let config_of ~layout ~size_ratio ~buffer_kib =
  {
    Lsm_core.Config.default with
    write_buffer_size = buffer_kib * 1024;
    level1_capacity = 4 * buffer_kib * 1024;
    target_file_size = 2 * buffer_kib * 1024;
    compaction = policy_of_layout ~size_ratio layout;
  }

let device_of_dir = function
  | Some dir -> Device.on_disk ~dir ()
  | None -> Device.in_memory ()

(* ---------------- bench ---------------- *)

let workload_conv =
  Arg.enum
    [
      ("ycsb-a", `A); ("ycsb-b", `B); ("ycsb-c", `C); ("ycsb-d", `D); ("ycsb-e", `E);
      ("ycsb-f", `F); ("write-only", `W); ("read-heavy", `R); ("delete-heavy", `Del);
      ("mixed", `M);
    ]

let spec_of ~records ~operations = function
  | `A -> Spec.ycsb_a ~records ~operations ()
  | `B -> Spec.ycsb_b ~records ~operations ()
  | `C -> Spec.ycsb_c ~records ~operations ()
  | `D -> Spec.ycsb_d ~records ~operations ()
  | `E -> Spec.ycsb_e ~records ~operations ()
  | `F -> Spec.ycsb_f ~records ~operations ()
  | `W -> Spec.write_only ~records:operations ()
  | `R -> Spec.read_heavy ~records ~operations ()
  | `Del -> Spec.delete_heavy ~records ~operations ()
  | `M -> Spec.mixed ~records ~operations ()

let bench workload layout strategy size_ratio buffer_kib records operations dir =
  let dev = device_of_dir dir in
  let config = config_of ~layout ~size_ratio ~buffer_kib in
  let config =
    match strategy with
    | None -> config
    | Some name -> (
      match Lsm_compaction.Compactionary.find name with
      | Some policy -> { config with Lsm_core.Config.compaction = policy }
      | None ->
        Printf.eprintf "unknown strategy %s; known: %s\n" name
          (String.concat ", " Lsm_compaction.Compactionary.names);
        exit 2)
  in
  let db = Db.open_db ~config ~dev () in
  let store = Kv_store.of_db db in
  let spec = spec_of ~records ~operations workload in
  Printf.printf "running %s against %s\n%!" (Spec.describe spec)
    (Lsm_core.Config.describe config);
  let result = Runner.run store spec in
  print_endline Runner.header;
  print_endline (Runner.row result);
  Format.printf "@.engine statistics:@.%a@." Lsm_core.Stats.pp (Db.stats db);
  Format.printf "tree:@.%a@." Db.pp_tree db;
  Db.close db

let bench_cmd =
  let workload =
    Arg.(value & opt workload_conv `A & info [ "workload"; "w" ] ~doc:"Workload preset.")
  in
  let layout = Arg.(value & opt layout_conv `Leveled & info [ "layout"; "l" ] ~doc:"Data layout.") in
  let strategy =
    Arg.(value & opt (some string) None
         & info [ "strategy" ] ~doc:"Named compactionary strategy (see `strategies`).")
  in
  let size_ratio = Arg.(value & opt int 10 & info [ "size-ratio"; "T" ] ~doc:"Size ratio T.") in
  let buffer = Arg.(value & opt int 256 & info [ "buffer-kib" ] ~doc:"Write buffer KiB.") in
  let records = Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"Preloaded records.") in
  let ops = Arg.(value & opt int 50_000 & info [ "ops" ] ~doc:"Measured operations.") in
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~doc:"Directory for on-disk files.")
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run a workload preset and report metrics")
    Term.(const bench $ workload $ layout $ strategy $ size_ratio $ buffer $ records $ ops $ dir)

let strategies_cmd =
  Cmd.v (Cmd.info "strategies" ~doc:"List the compactionary's named strategies")
    Term.(const (fun () -> print_endline (Lsm_compaction.Compactionary.describe_all ())) $ const ())

(* ---------------- advise ---------------- *)

let advise inserts reads misses scans long_scans memory_mib rho =
  let w =
    {
      Lsm_cost.Model.entries = 50_000_000;
      entry_bytes = 128;
      page_bytes = 4096;
      f_insert = inserts;
      f_point_lookup_hit = reads;
      f_point_lookup_miss = misses;
      f_short_scan = scans;
      f_long_scan = long_scans;
      long_scan_pages = 64.0;
    }
  in
  let total = Lsm_cost.Model.mix_total w in
  if abs_float (total -. 1.0) > 0.05 then
    Printf.printf "note: mix sums to %.2f (renormalize your fractions)\n" total;
  let mem_bits = 8.0 *. float_of_int (memory_mib * 1024 * 1024) in
  let best = Lsm_cost.Navigator.best ~total_memory_bits:mem_bits w in
  Printf.printf "nominal optimum : %s  (expected %.4f I/O per op)\n"
    (Lsm_cost.Model.describe_design best.Lsm_cost.Navigator.design)
    best.Lsm_cost.Navigator.cost;
  let robust = Lsm_cost.Robust.robust_best ~rho ~total_memory_bits:mem_bits w in
  Printf.printf "robust (rho=%.2f): %s  (worst case %.4f I/O per op)\n" rho
    (Lsm_cost.Model.describe_design robust.Lsm_cost.Navigator.design)
    robust.Lsm_cost.Navigator.cost

let advise_cmd =
  let frac name dflt doc = Arg.(value & opt float dflt & info [ name ] ~doc) in
  Cmd.v (Cmd.info "advise" ~doc:"Recommend a design for a workload mix")
    Term.(
      const advise
      $ frac "inserts" 0.5 "Insert/update fraction."
      $ frac "reads" 0.3 "Point-lookup (hit) fraction."
      $ frac "misses" 0.1 "Zero-result lookup fraction."
      $ frac "scans" 0.05 "Short-scan fraction."
      $ frac "long-scans" 0.05 "Long-scan fraction."
      $ Arg.(value & opt int 64 & info [ "memory-mib" ] ~doc:"Total memory budget MiB.")
      $ frac "rho" 0.25 "Uncertainty radius for robust tuning.")

(* ---------------- tree ---------------- *)

let tree keys layout size_ratio buffer_kib =
  let dev = Device.in_memory () in
  let config = config_of ~layout ~size_ratio ~buffer_kib in
  let db = Db.open_db ~config ~dev () in
  let rng = Lsm_util.Rng.create 7 in
  for _ = 1 to keys do
    Db.put db
      ~key:(Printf.sprintf "key%012d" (Lsm_util.Rng.int rng (2 * keys)))
      (String.make 100 'v')
  done;
  Db.flush db;
  Format.printf "%s, %d puts:@.%a@." (Lsm_core.Config.describe config) keys Db.pp_tree db;
  Printf.printf "write amplification %.2f, space amplification %.2f\n"
    (Db.write_amplification db) (Db.space_amplification db);
  Db.close db

let tree_cmd =
  Cmd.v (Cmd.info "tree" ~doc:"Load synthetic data and print the tree shape")
    Term.(
      const tree
      $ Arg.(value & opt int 100_000 & info [ "keys" ] ~doc:"Number of puts.")
      $ Arg.(value & opt layout_conv `Leveled & info [ "layout"; "l" ] ~doc:"Data layout.")
      $ Arg.(value & opt int 10 & info [ "size-ratio"; "T" ] ~doc:"Size ratio.")
      $ Arg.(value & opt int 256 & info [ "buffer-kib" ] ~doc:"Write buffer KiB."))

(* ---------------- demo ---------------- *)

let demo dir =
  let dev = device_of_dir dir in
  let db = Db.open_db ~dev () in
  Db.put db ~key:"hello" "world";
  Db.put db ~key:"answer" "42";
  Printf.printf "hello -> %s\n" (Option.value ~default:"?" (Db.get db "hello"));
  Db.delete db "hello";
  Printf.printf "after delete, hello -> %s\n" (Option.value ~default:"<gone>" (Db.get db "hello"));
  List.iter (fun (k, v) -> Printf.printf "scan: %s = %s\n" k v) (Db.scan db ~lo:"" ~hi:None ());
  Db.close db;
  match dir with
  | Some d -> Printf.printf "state persisted under %s\n" d
  | None -> print_endline "in-memory device: state discarded"

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Tiny put/get/scan session")
    Term.(
      const demo
      $ Arg.(value & opt (some string) None & info [ "dir" ] ~doc:"Directory for on-disk files."))

let () =
  let info = Cmd.info "lsm_cli" ~doc:"LSM design-space engine command line" in
  exit (Cmd.eval (Cmd.group info [ bench_cmd; advise_cmd; tree_cmd; demo_cmd; strategies_cmd ]))
