(* lsm-server — the sharded, multi-tenant serving front door.

   Opens N hash-partitioned engine shards (each with its own WAL and
   manifest under --root, or purely in memory) and serves the RESP
   command set documented in [Lsm_server.Server] on a Unix-domain
   socket. SIGINT/SIGTERM trigger the same graceful drain as the
   SHUTDOWN command: pending replies flush, every shard's background
   lane quiesces, then the listener exits.

   Examples:
     dune exec bin/lsm_server.exe -- --socket /tmp/lsm.sock --root /tmp/lsm-data
     dune exec bin/lsm_server.exe -- --socket /tmp/lsm.sock --memory --shards 8 \
       --workers 4 --fanout 4 *)

module Config = Lsm_core.Config
open Lsm_server

let () =
  let socket = ref "/tmp/lsm-server.sock" in
  let root = ref "" in
  let memory = ref false in
  let shards = ref 4 in
  let workers = ref 2 in
  let fanout = ref 0 in
  let buffer_kib = ref 1024 in
  let quota_ops = ref 0 in
  let quota_bytes = ref 0 in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH Unix-domain socket to listen on");
      ("--root", Arg.Set_string root, "DIR on-disk data root (one subdir per shard)");
      ("--memory", Arg.Set memory, " keep all shards in memory (testing)");
      ("--shards", Arg.Set_int shards, "N number of hash-partitioned shards (default 4)");
      ( "--workers",
        Arg.Set_int workers,
        "N background compaction workers per shard lane (default 2; 0 = inline)" );
      ( "--fanout",
        Arg.Set_int fanout,
        "N cross-shard fan-out domains for MGET/MSET (default 0 = sequential)" );
      ("--buffer-kib", Arg.Set_int buffer_kib, "KIB write buffer per shard (default 1024)");
      ( "--default-quota-ops",
        Arg.Set_int quota_ops,
        "N per-tenant ops/second default limit (0 = unlimited)" );
      ( "--default-quota-bytes",
        Arg.Set_int quota_bytes,
        "N per-tenant bytes/second default limit (0 = unlimited)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "lsm-server: RESP front door over sharded LSM engines";
  let mode =
    if !memory then `Memory
    else if !root <> "" then begin
      (try Unix.mkdir !root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      `Disk !root
    end
    else begin
      prerr_endline "lsm-server: need --root DIR or --memory";
      exit 2
    end
  in
  let config =
    {
      Config.default with
      write_buffer_size = !buffer_kib * 1024;
      compaction_backend = (if !workers > 0 then Config.Background else Config.Inline);
      compaction_workers = max 1 !workers;
      wal_sync_every_write = false;
    }
  in
  let lim n = if n > 0 then Some n else None in
  let quota =
    Quota.create ~default:{ Quota.max_ops = lim !quota_ops; max_bytes = lim !quota_bytes } ()
  in
  let map = Shard_map.open_shards ~config ~fanout_workers:!fanout ~count:!shards ~mode () in
  let server = Server.create ~quota ~shards:map ~sock_path:!socket () in
  let stop _ = Server.request_shutdown server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.printf "lsm-server: %d shard(s), listening on %s\n%!" (Shard_map.count map) !socket;
  Server.run server;
  Shard_map.close_all map;
  let s = Server.stats server in
  Printf.printf "lsm-server: drained after %d commands over %d connection(s)\n%!"
    s.Server.commands s.Server.accepted
