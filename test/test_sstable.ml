(* Tests for lsm_sstable: block format, build/read roundtrip, fence-pointer
   seeks, filter wiring, corruption detection, table cache. *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
open Lsm_sstable

let cmp = Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let e ?(kind = Entry.Put) ?(value = "") key seqno = { Entry.key; seqno; kind; value }

(* ---------- Block ---------- *)

let entries_for_block n =
  List.init n (fun i -> e (Printf.sprintf "key%05d" i) (i + 1) ~value:("v" ^ string_of_int i))

let build_block entries =
  let b = Block.Builder.create () in
  List.iter (Block.Builder.add b) entries;
  Block.Builder.finish b

let test_block_roundtrip () =
  let entries = entries_for_block 100 in
  let block = build_block entries in
  let it = Block.iterator cmp (Block.parse_checked block) in
  let got = Iter.to_list it in
  check "all entries back" true (got = entries)

let test_block_prefix_compression_shrinks () =
  let entries = entries_for_block 200 in
  let block = build_block entries in
  let raw = List.fold_left (fun a x -> a + Entry.encoded_size x) 0 entries in
  check
    (Printf.sprintf "compressed %d < raw %d" (String.length block) raw)
    true
    (String.length block < raw)

let test_block_seek () =
  let entries = entries_for_block 100 in
  let it = Block.iterator cmp (Block.parse_checked (build_block entries)) in
  it.Iter.seek "key00050";
  check_str "exact" "key00050" (it.Iter.entry ()).Entry.key;
  it.Iter.seek "key00050a";
  check_str "between keys" "key00051" (it.Iter.entry ()).Entry.key;
  it.Iter.seek "zzz";
  check "past end" false (it.Iter.valid ());
  it.Iter.seek "";
  check_str "before start" "key00000" (it.Iter.entry ()).Entry.key

let test_block_seek_versions () =
  (* Multiple versions of one key: seek must land on the newest. *)
  let entries = [ e "a" 1; e "k" 9 ~value:"new"; e "k" 5 ~value:"mid"; e "k" 2 ~value:"old" ] in
  let sorted = List.sort (Entry.compare cmp) entries in
  let it = Block.iterator cmp (Block.parse_checked (build_block sorted)) in
  it.Iter.seek "k";
  check_int "newest version" 9 (it.Iter.entry ()).Entry.seqno

let test_block_checksum_detects_corruption () =
  let block = build_block (entries_for_block 10) in
  let corrupted = Bytes.of_string block in
  Bytes.set corrupted 3 (Char.chr (Char.code (Bytes.get corrupted 3) lxor 0xff));
  check "raises" true
    (try
       ignore (Block.decode_check (Bytes.to_string corrupted));
       false
     with Codec.Corrupt _ -> true)

let prop_block_roundtrip =
  QCheck.Test.make ~name:"block roundtrip (random)" ~count:200
    QCheck.(list (pair (string_gen_of_size Gen.(1 -- 10) Gen.printable) (map abs small_int)))
    (fun raw ->
      let entries =
        List.mapi (fun i (k, s) -> e k ((s * 1000) + i) ~value:(string_of_int i)) raw
        |> List.sort (Entry.compare cmp)
      in
      match entries with
      | [] -> true
      | entries ->
        let it = Block.iterator cmp (Block.parse_checked (build_block entries)) in
        Iter.to_list it = entries)

(* ---------- zero-copy cursor vs reference decoder ---------- *)

(* Straight-line reference decoder: re-derives every record from the
   spec (copying, allocation-heavy) with no code shared with the cursor,
   so the two can disagree only if one of them is wrong. *)
let reference_decode block =
  let body = Block.decode_check block in
  let n = String.length body in
  let count = Codec.get_u32 (Codec.reader ~pos:(n - 4) body) in
  let data_end = n - 4 - (4 * count) in
  let r = Codec.reader body in
  let out = ref [] in
  let prev = ref "" in
  while r.Codec.pos < data_end do
    let shared = Codec.get_varint r in
    let unshared = Codec.get_varint r in
    let key = String.sub !prev 0 shared ^ Codec.get_raw r unshared in
    let seqno = Codec.get_varint r in
    let kind = Entry.kind_of_int (Codec.get_u8 r) in
    let value = Codec.get_lp_string r in
    out := { Entry.key; seqno; kind; value } :: !out;
    prev := key
  done;
  List.rev !out

(* Small alphabet, long keys: maximizes shared-prefix churn, including
   keys that are prefixes of their neighbours. *)
let gen_adversarial_entries =
  QCheck.Gen.(
    list_size (1 -- 300)
      (pair (map (String.concat "") (list_size (1 -- 12) (oneofl [ "a"; "b"; "ab"; "aa" ]))) (0 -- 1000)))

let adversarial_entries raw =
  List.mapi (fun i (k, s) -> e k ((s * 1000) + i) ~value:(String.make (i mod 7) 'v')) raw
  |> List.sort (Entry.compare cmp)

let build_block_ri ri entries =
  let b = Block.Builder.create ~restart_interval:ri () in
  List.iter (Block.Builder.add b) entries;
  Block.Builder.finish b

(* Both engine decode paths: a raw-framed block parsed in place at
   base 1, and an lz-roundtripped buffer parsed at base 0. *)
let parsed_both_ways block =
  [
    Block.parse_checked ~base:1 ("\x00" ^ block);
    Block.parse_checked
      (Lsm_util.Lz.decompress (Lsm_util.Lz.compress block) ~expected_len:(String.length block));
  ]

let restart_intervals = [ 1; 2; 16; 64 ]

let prop_cursor_matches_reference =
  QCheck.Test.make ~name:"zero-copy cursor = reference decoder" ~count:100
    (QCheck.make gen_adversarial_entries)
    (fun raw ->
      let entries = adversarial_entries raw in
      List.for_all
        (fun ri ->
          let block = build_block_ri ri entries in
          let reference = reference_decode block in
          reference = entries
          && List.for_all
               (fun p ->
                 (* full drain through the iterator facade *)
                 Iter.to_list (Block.iterator cmp p) = reference
                 (* and entry-for-entry through the raw cursor, checking
                    every accessor against the materialized record *)
                 &&
                 let cur = Block.Cursor.make cmp p in
                 Block.Cursor.seek_to_first cur;
                 List.for_all
                   (fun (want : Entry.t) ->
                     let ok =
                       Block.Cursor.valid cur
                       && Block.Cursor.key cur = want.Entry.key
                       && Block.Cursor.key_compare cur want.Entry.key = 0
                       && Block.Cursor.seqno cur = want.Entry.seqno
                       && Block.Cursor.kind cur = want.Entry.kind
                       && Block.Cursor.value cur = want.Entry.value
                       && Lsm_record.Slice.to_string (Block.Cursor.value_slice cur)
                          = want.Entry.value
                       && Block.Cursor.entry cur = want
                     in
                     Block.Cursor.next cur;
                     ok)
                   reference
                 && not (Block.Cursor.valid cur))
               (parsed_both_ways block))
        restart_intervals)

let rec drop_while p = function x :: tl when p x -> drop_while p tl | l -> l

let drain_cursor cur =
  let out = ref [] in
  while Block.Cursor.valid cur do
    out := Block.Cursor.entry cur :: !out;
    Block.Cursor.next cur
  done;
  List.rev !out

let prop_seek_at_restart_boundaries =
  QCheck.Test.make ~name:"seek-then-next at every restart boundary" ~count:40
    (QCheck.make gen_adversarial_entries)
    (fun raw ->
      let entries = adversarial_entries raw in
      List.for_all
        (fun ri ->
          let block = build_block_ri ri entries in
          let reference = reference_decode block in
          let p = Block.parse_checked ~base:1 ("\x00" ^ block) in
          (* Every record index that begins a restart, plus the exact key,
             a just-above key, and a just-below prefix for each. *)
          let boundary_keys =
            List.filteri (fun i _ -> i mod ri = 0) reference
            |> List.concat_map (fun (e : Entry.t) ->
                   let k = e.Entry.key in
                   [ k; k ^ "\x00"; String.sub k 0 (String.length k - 1) ])
          in
          List.for_all
            (fun target ->
              let expected = drop_while (fun (e : Entry.t) -> cmp.compare e.Entry.key target < 0) reference in
              let it = Block.iterator cmp p in
              it.Iter.seek target;
              let via_iter =
                let out = ref [] in
                while it.Iter.valid () do
                  out := it.Iter.entry () :: !out;
                  it.Iter.next ()
                done;
                List.rev !out
              in
              via_iter = expected && drain_cursor (Block.find cmp p target) = expected)
            boundary_keys)
        restart_intervals)

(* ---------- Sstable ---------- *)

let fresh_env () =
  let dev = Device.in_memory () in
  let cache = Block_cache.create ~capacity:(1 lsl 20) () in
  (dev, cache)

let many_entries n =
  List.init n (fun i -> e (Printf.sprintf "user%06d" i) (i + 1) ~value:(String.make 32 'v'))

let build_table ?config dev entries =
  Sstable.build ?config ~cmp ~dev ~cls:Io_stats.C_flush ~name:"t.sst" ~created_at:7
    (Iter.of_sorted_list cmp entries)

let test_sstable_roundtrip () =
  let dev, cache = fresh_env () in
  let entries = many_entries 3000 in
  let props = build_table dev entries in
  check_int "props entries" 3000 props.Sstable.Props.entries;
  check_str "min key" "user000000" props.Sstable.Props.min_key;
  check_str "max key" "user002999" props.Sstable.Props.max_key;
  check_int "created_at" 7 props.Sstable.Props.created_at;
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  check "multiple blocks" true (Sstable.index_block_count r > 5);
  let got = Iter.to_list (Sstable.iterator r ~cls:Io_stats.C_user_read ()) in
  check "iterator returns everything in order" true (got = entries)

let test_sstable_get () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 2000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  (match Sstable.get r ~cls:Io_stats.C_user_read "user001234" with
  | Some got -> check_int "seqno" 1235 got.Entry.seqno
  | None -> Alcotest.fail "expected hit");
  check "absent key (in range)" true
    (Sstable.get r ~cls:Io_stats.C_user_read "user001234x" = None);
  check "absent key (out of range)" true
    (Sstable.get r ~cls:Io_stats.C_user_read "zzz" = None)

let test_sstable_get_max_seqno () =
  let dev, cache = fresh_env () in
  let entries = List.sort (Entry.compare cmp) [ e "k" 10 ~value:"new"; e "k" 3 ~value:"old" ] in
  ignore (build_table dev entries);
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  (match Sstable.get r ~cls:Io_stats.C_user_read ~max_seqno:5 "k" with
  | Some got -> check_str "snapshot sees old" "old" got.Entry.value
  | None -> Alcotest.fail "expected old version");
  check "before creation" true (Sstable.get r ~cls:Io_stats.C_user_read ~max_seqno:2 "k" = None)

let test_sstable_filter_skips_io () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 2000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  let before = Io_stats.pages_read ~cls:Io_stats.C_user_read (Device.stats dev) in
  (* In-range key that does not exist: the filter almost surely rejects. *)
  let missed = ref 0 in
  for i = 0 to 199 do
    if not (Sstable.may_contain_key r (Printf.sprintf "user%06dZZ" i)) then incr missed
  done;
  let after = Io_stats.pages_read ~cls:Io_stats.C_user_read (Device.stats dev) in
  check (Printf.sprintf "filter rejected %d/200" !missed) true (!missed > 180);
  check_int "no data-block reads for filter probes" before after

let test_sstable_iterator_seek () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 5000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  let it = Sstable.iterator r ~cls:Io_stats.C_user_read () in
  it.Iter.seek "user004321";
  check_str "seek across blocks" "user004321" (it.Iter.entry ()).Entry.key;
  it.Iter.seek "user004999zzz";
  check "past end" false (it.Iter.valid ());
  it.Iter.seek_to_first ();
  check_str "rewind" "user000000" (it.Iter.entry ()).Entry.key

let test_sstable_range_tombstones_in_props () =
  let dev, cache = fresh_env () in
  let entries =
    List.sort (Entry.compare cmp)
      [ e "a" 1 ~value:"x"; Entry.range_delete ~start_key:"b" ~end_key:"m" ~seqno:2; e "z" 3 ]
  in
  ignore (build_table dev entries);
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  let rds = (Sstable.props r).Sstable.Props.range_tombstones in
  check_int "one range tombstone" 1 (List.length rds);
  check_str "carries end key" "m" (List.hd rds).Entry.value

let test_sstable_empty_rejected () =
  let dev, _ = fresh_env () in
  check "raises on empty input" true
    (try
       ignore (build_table dev []);
       false
     with Invalid_argument _ -> true)

let test_sstable_tombstone_counts () =
  let dev, cache = fresh_env () in
  let entries =
    List.sort (Entry.compare cmp)
      [ e "a" 1; Entry.delete ~key:"b" ~seqno:2; Entry.single_delete ~key:"c" ~seqno:3; e "d" 4 ]
  in
  ignore (build_table dev entries);
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  check_int "point tombstones" 2 (Sstable.props r).Sstable.Props.point_tombstones

let test_sstable_uses_block_cache () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 2000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  ignore (Sstable.get r ~cls:Io_stats.C_user_read "user000500");
  let reads_before = Io_stats.pages_read ~cls:Io_stats.C_user_read (Device.stats dev) in
  ignore (Sstable.get r ~cls:Io_stats.C_user_read "user000500");
  let reads_after = Io_stats.pages_read ~cls:Io_stats.C_user_read (Device.stats dev) in
  check_int "second get served from cache" reads_before reads_after;
  check "cache hit recorded" true (Block_cache.hits cache > 0)

let test_sstable_compaction_iter_bypasses_cache () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 2000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  let it = Sstable.iterator r ~cls:Io_stats.C_compaction_read ~use_cache:false () in
  ignore (Iter.to_list it);
  check_int "nothing inserted into cache" 0 (Block_cache.block_count cache)

let test_sstable_prefetch () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 2000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  let n = Sstable.prefetch_into_cache r ~cls:Io_stats.C_compaction_read in
  check_int "all blocks cached" n (Block_cache.block_count cache);
  check_int "matches index" (Sstable.index_block_count r) n

let test_sstable_corrupt_footer () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 100));
  (* Copy with a clobbered magic number. *)
  let len = Device.size dev "t.sst" in
  let data = Device.read dev ~cls:Io_stats.C_misc "t.sst" ~off:0 ~len in
  let bad = Bytes.of_string data in
  Bytes.set bad (len - 1) '\x00';
  let w = Device.open_writer dev ~cls:Io_stats.C_misc "bad.sst" in
  Device.append w (Bytes.to_string bad);
  Device.close w;
  check "bad magic raises" true
    (try
       ignore (Sstable.open_reader ~cmp ~dev ~cache "bad.sst");
       false
     with Lsm_util.Lsm_error.Error (Lsm_util.Lsm_error.Corruption _) -> true)

let test_monkey_override_changes_filter_size () =
  let dev, cache = fresh_env () in
  let entries = many_entries 1000 in
  let config =
    { Sstable.default_build_config with filter_bits_override = Some 20.0 }
  in
  ignore (Sstable.build ~config ~cmp ~dev ~cls:Io_stats.C_flush ~name:"big.sst" ~created_at:0
            (Iter.of_sorted_list cmp entries));
  let config2 = { Sstable.default_build_config with filter_bits_override = Some 2.0 } in
  ignore (Sstable.build ~config:config2 ~cmp ~dev ~cls:Io_stats.C_flush ~name:"small.sst"
            ~created_at:0 (Iter.of_sorted_list cmp entries));
  let big = Sstable.open_reader ~cmp ~dev ~cache "big.sst" in
  let small = Sstable.open_reader ~cmp ~dev ~cache "small.sst" in
  check "override respected" true (Sstable.filter_bits big > 4 * Sstable.filter_bits small)

(* Model-based: random entries, roundtrip through a table, compare gets. *)
let prop_sstable_get_matches_model =
  QCheck.Test.make ~name:"sstable get = model" ~count:50
    QCheck.(list_of_size Gen.(1 -- 200) (pair (int_bound 100) (map abs small_int)))
    (fun raw ->
      let entries =
        List.mapi
          (fun i (k, _) -> e (Printf.sprintf "k%03d" k) (i + 1) ~value:(string_of_int i))
          raw
        |> List.sort (Entry.compare cmp)
      in
      let dev, cache = fresh_env () in
      ignore
        (Sstable.build ~cmp ~dev ~cls:Io_stats.C_flush ~name:"m.sst" ~created_at:0
           (Iter.of_sorted_list cmp entries));
      let r = Sstable.open_reader ~cmp ~dev ~cache "m.sst" in
      List.for_all
        (fun key ->
          let expected =
            List.filter (fun (x : Entry.t) -> x.key = key) entries
            |> List.fold_left
                 (fun acc (x : Entry.t) ->
                   match acc with
                   | Some (b : Entry.t) when b.seqno >= x.seqno -> acc
                   | _ -> Some x)
                 None
          in
          Sstable.get r ~cls:Io_stats.C_user_read key = expected)
        (List.init 100 (fun k -> Printf.sprintf "k%03d" k)))

(* ---------- Table_meta & Table_cache ---------- *)

let test_table_meta_roundtrip () =
  let dev, _ = fresh_env () in
  let props = build_table dev (many_entries 10) in
  let m = Table_meta.of_props ~file_id:42 ~file_name:"t.sst" ~size:12345 props in
  let b = Buffer.create 64 in
  Table_meta.encode b m;
  let m' = Table_meta.decode (Codec.reader (Buffer.contents b)) in
  check "roundtrip" true (m = m')

let test_table_meta_overlaps () =
  let dev, _ = fresh_env () in
  let props = build_table dev (many_entries 100) in
  let m = Table_meta.of_props ~file_id:1 ~file_name:"t.sst" ~size:1 props in
  check "overlapping" true (Table_meta.overlaps cmp m ~lo:"user000050" ~hi:"user000060");
  check "disjoint below" false (Table_meta.overlaps cmp m ~lo:"a" ~hi:"b");
  check "disjoint above" false (Table_meta.overlaps cmp m ~lo:"z" ~hi:"zz");
  check "touching max" true (Table_meta.overlaps cmp m ~lo:"user000099" ~hi:"zzz")

let test_table_cache_shares_readers () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 10));
  let tc = Table_cache.create ~cmp ~dev ~cache () in
  let a = Table_cache.get tc "t.sst" in
  let b = Table_cache.get tc "t.sst" in
  check "same reader" true (a == b);
  check_int "one open" 1 (Table_cache.open_count tc);
  Table_cache.evict tc "t.sst";
  check_int "evicted" 0 (Table_cache.open_count tc)

(* A cached block that rots after validation (CRC-valid container,
   garbage records) must be dropped alone — the file's other blocks stay
   hot — and the read healed from the device. *)
let test_corrupt_cached_block_single_eviction () =
  let dev, cache = fresh_env () in
  ignore (build_table dev (many_entries 2000));
  let r = Sstable.open_reader ~cmp ~dev ~cache "t.sst" in
  ignore (Sstable.prefetch_into_cache r ~cls:Io_stats.C_misc);
  let index = Sstable.index_entries r in
  check "several blocks" true (Array.length index > 2);
  (* Forge a parsed block whose container verifies but whose first
     record is a malformed varint: what post-validation rot looks like. *)
  let poison =
    let b = Buffer.create 32 in
    Buffer.add_string b (String.make 10 '\xff');
    Codec.put_u32 b 0;
    Codec.put_u32 b 1;
    let crc = Crc32c.mask (Crc32c.string (Buffer.contents b)) in
    Codec.put_u32 b (Int32.to_int crc land 0xffffffff);
    Block.parse_checked (Buffer.contents b)
  in
  Block_cache.insert cache ~file:(Sstable.name r) ~off:index.(0).Sstable.off
    ~bytes:(Block.parsed_cost poison) poison;
  (match Sstable.get r ~cls:Io_stats.C_user_read "user000000" with
  | Some got -> check_int "read healed from device" 1 got.Entry.seqno
  | None -> Alcotest.fail "expected healed hit");
  check "neighbour block still cached" true
    (Block_cache.find cache ~file:(Sstable.name r) ~off:index.(1).Sstable.off <> None);
  check "poisoned slot repopulated" true
    (Block_cache.find cache ~file:(Sstable.name r) ~off:index.(0).Sstable.off <> None)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("block roundtrip", `Quick, test_block_roundtrip);
    ("block prefix compression shrinks", `Quick, test_block_prefix_compression_shrinks);
    ("block seek", `Quick, test_block_seek);
    ("block seek lands on newest version", `Quick, test_block_seek_versions);
    ("block checksum detects corruption", `Quick, test_block_checksum_detects_corruption);
    ("sstable roundtrip", `Quick, test_sstable_roundtrip);
    ("sstable get", `Quick, test_sstable_get);
    ("sstable snapshot get", `Quick, test_sstable_get_max_seqno);
    ("sstable filter skips io", `Quick, test_sstable_filter_skips_io);
    ("sstable iterator seek", `Quick, test_sstable_iterator_seek);
    ("sstable range tombstones in props", `Quick, test_sstable_range_tombstones_in_props);
    ("sstable rejects empty build", `Quick, test_sstable_empty_rejected);
    ("sstable tombstone counts", `Quick, test_sstable_tombstone_counts);
    ("sstable uses block cache", `Quick, test_sstable_uses_block_cache);
    ("sstable compaction bypasses cache", `Quick, test_sstable_compaction_iter_bypasses_cache);
    ("sstable prefetch", `Quick, test_sstable_prefetch);
    ("corrupt cached block: single eviction + heal", `Quick, test_corrupt_cached_block_single_eviction);
    ("sstable corrupt footer", `Quick, test_sstable_corrupt_footer);
    ("monkey override changes filter size", `Quick, test_monkey_override_changes_filter_size);
    ("table meta roundtrip", `Quick, test_table_meta_roundtrip);
    ("table meta overlaps", `Quick, test_table_meta_overlaps);
    ("table cache shares readers", `Quick, test_table_cache_shares_readers);
    qt prop_block_roundtrip;
    qt prop_cursor_matches_reference;
    qt prop_seek_at_restart_boundaries;
    qt prop_sstable_get_matches_model;
  ]
