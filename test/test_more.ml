(* Additional coverage: the engine on a real filesystem, iterator fuzzing
   against a reference model, LRU cache model equivalence, binary-key
   robustness, and stress shapes (many snapshots, oversized values). *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
module Rng = Lsm_util.Rng
open Lsm_core

let cmp = Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option string))

let small_config () =
  {
    Config.default with
    write_buffer_size = 8 * 1024;
    level1_capacity = 32 * 1024;
    target_file_size = 16 * 1024;
    block_size = 1024;
    paranoid_checks = true;
  }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

(* ---------- real filesystem end-to-end ---------- *)

let test_engine_on_real_files () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lsm_e2e" in
  (* Clean slate. *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let config = small_config () in
  let dev = Device.on_disk ~dir () in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 2999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.delete db (key 7);
  Db.flush db;
  check "sst files exist on disk" true
    (List.exists (fun f -> Filename.check_suffix f ".sst") (Array.to_list (Sys.readdir dir)));
  check_opt "read back" (Some (value 42)) (Db.get db (key 42));
  check_opt "delete holds" None (Db.get db (key 7));
  Db.close db;
  (* Reopen from the real files. *)
  let dev2 = Device.on_disk ~dir () in
  let db2 = Db.open_db ~config ~dev:dev2 () in
  check_opt "survives reopen from disk" (Some (value 1234)) (Db.get db2 (key 1234));
  check_opt "tombstone survives reopen" None (Db.get db2 (key 7));
  check_int "full scan size" 2999 (List.length (Db.scan db2 ~lo:"" ~hi:None ()));
  Db.close db2

(* ---------- binary / adversarial keys ---------- *)

let test_binary_keys () =
  let _dev = () in
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  let nasty =
    [ "\x00"; "\x00\x00"; "\xff"; "\xff\xff\xff"; "a\x00b"; "\x01\xfe"; String.make 300 '\xab';
      "" ]
  in
  List.iteri (fun i k -> Db.put db ~key:k (Printf.sprintf "v%d" i)) nasty;
  Db.flush db;
  List.iteri
    (fun i k ->
      if Db.get db k <> Some (Printf.sprintf "v%d" i) then
        Alcotest.failf "binary key %d lost" i)
    nasty;
  (* scan must return them in byte order *)
  let keys = List.map fst (Db.scan db ~lo:"" ~hi:None ()) in
  check "sorted byte order" true (keys = List.sort compare nasty);
  Db.close db

let test_value_larger_than_block () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  let big = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  Db.put db ~key:"big" big;
  Db.put db ~key:"small" "s";
  Db.flush db;
  check "oversized value intact" true (Db.get db "big" = Some big);
  check_opt "neighbour intact" (Some "s") (Db.get db "small");
  Db.close db

let test_many_snapshots () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  let snaps = ref [] in
  for gen = 0 to 19 do
    Db.put db ~key:"k" (string_of_int gen);
    snaps := (gen, Db.snapshot db) :: !snaps
  done;
  Db.major_compact db;
  List.iter
    (fun (gen, snap) ->
      if Db.get db ~snapshot:snap "k" <> Some (string_of_int gen) then
        Alcotest.failf "snapshot %d lost its version" gen)
    !snaps;
  (* Release all, compact again: only the latest version remains. *)
  List.iter (fun (_, s) -> Db.release db s) !snaps;
  Db.major_compact db;
  check_opt "latest after release" (Some "19") (Db.get db "k");
  let entries =
    List.fold_left
      (fun a (f : Lsm_sstable.Table_meta.t) -> a + f.entries)
      0
      (Version.all_files (Db.version db))
  in
  check (Printf.sprintf "history GCed (%d entries)" entries) true (entries <= 2);
  Db.close db

let test_reopen_many_times () =
  let dev = Device.in_memory () in
  let config = { (small_config ()) with Config.wal_sync_every_write = true } in
  for round = 0 to 9 do
    let db = Db.open_db ~config ~dev () in
    Db.put db ~key:(Printf.sprintf "round%02d" round) "x";
    (* Every earlier round must still be visible. *)
    for r = 0 to round do
      if Db.get db (Printf.sprintf "round%02d" r) <> Some "x" then
        Alcotest.failf "round %d lost at reopen %d" r round
    done;
    Db.close db
  done

(* ---------- sstable iterator fuzz ---------- *)

let prop_sstable_iterator_fuzz =
  QCheck.Test.make ~name:"sstable iterator: random seek/next = model" ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 150) (int_bound 300))
        (list_of_size Gen.(1 -- 60) (pair bool (int_bound 330))))
    (fun (raw_keys, ops) ->
      let entries =
        List.sort_uniq compare raw_keys
        |> List.mapi (fun i k -> { Entry.key = Printf.sprintf "k%04d" k; seqno = i + 1;
                                   kind = Entry.Put; value = "v" })
        |> List.sort (Entry.compare cmp)
      in
      match entries with
      | [] -> true
      | entries ->
        let dev = Device.in_memory () in
        let cache = Block_cache.create ~capacity:(1 lsl 18) () in
        let config = { Lsm_sstable.Sstable.default_build_config with block_size = 256 } in
        ignore
          (Lsm_sstable.Sstable.build ~config ~cmp ~dev ~cls:Io_stats.C_flush ~name:"f.sst"
             ~created_at:0 (Iter.of_sorted_list cmp entries));
        let reader = Lsm_sstable.Sstable.open_reader ~cmp ~dev ~cache "f.sst" in
        let it = Lsm_sstable.Sstable.iterator reader ~cls:Io_stats.C_user_read () in
        let model = Iter.of_sorted_list cmp entries in
        it.Iter.seek_to_first ();
        model.Iter.seek_to_first ();
        let agree () =
          it.Iter.valid () = model.Iter.valid ()
          && ((not (it.Iter.valid ())) || it.Iter.entry () = model.Iter.entry ())
        in
        List.for_all
          (fun (is_seek, target) ->
            if is_seek then begin
              let tk = Printf.sprintf "k%04d" target in
              it.Iter.seek tk;
              model.Iter.seek tk
            end
            else begin
              it.Iter.next ();
              model.Iter.next ()
            end;
            agree ())
          ops)

(* ---------- LRU cache model equivalence ---------- *)

let prop_lru_matches_model =
  (* Reference model: association list in recency order with byte budget. *)
  QCheck.Test.make ~name:"block cache = reference LRU" ~count:200
    QCheck.(list_of_size Gen.(0 -- 120) (pair (int_bound 12) (option (int_bound 30))))
    (fun ops ->
      let capacity = 100 in
      let cache = Block_cache.create ~capacity () in
      let model = ref [] in
      (* model: (off, data) list, most recent first *)
      let model_bytes () = List.fold_left (fun a (_, d) -> a + String.length d) 0 !model in
      let model_trim () =
        while model_bytes () > capacity do
          match List.rev !model with
          | [] -> assert false
          | victim :: _ -> model := List.filter (fun e -> e != victim) !model
        done
      in
      let ok = ref true in
      List.iter
        (fun (off, action) ->
          match action with
          | Some len ->
            let data = String.make len 'd' in
            Block_cache.insert cache ~file:"f" ~off ~bytes:len data;
            if len <= capacity then begin
              model := (off, data) :: List.remove_assoc off !model;
              model_trim ()
            end
          | None ->
            let got = Block_cache.find cache ~file:"f" ~off in
            let expected = List.assoc_opt off !model in
            if got <> expected then ok := false
            else (
              match expected with
              | Some d -> model := (off, d) :: List.remove_assoc off !model
              | None -> ()))
        ops;
      !ok && Block_cache.used_bytes cache = model_bytes ())

(* ---------- frag model property ---------- *)

let prop_frag_matches_model =
  QCheck.Test.make ~name:"frag engine = model (random ops)" ~count:20
    QCheck.(list_of_size Gen.(50 -- 400) (pair (int_bound 120) (option (int_bound 1000))))
    (fun ops ->
      let dev = Device.in_memory () in
      let config =
        {
          Lsm_frag.Frag_db.default_config with
          write_buffer_size = 4 * 1024;
          level0_limit = 2;
          level1_capacity = 8 * 1024;
          target_file_size = 4 * 1024;
          block_size = 512;
          guard_stride_base = 512;
        }
      in
      let db = Lsm_frag.Frag_db.create ~config ~dev () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            Lsm_frag.Frag_db.put db ~key:k (string_of_int v);
            Hashtbl.replace model k (Some (string_of_int v))
          | None ->
            Lsm_frag.Frag_db.delete db k;
            Hashtbl.replace model k None)
        ops;
      Hashtbl.fold (fun k v ok -> ok && Lsm_frag.Frag_db.get db k = v) model true)

(* ---------- io accounting sanity ---------- *)

let test_compaction_io_attributed () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    Db.put db ~key:(key (Rng.int rng 2_000)) (value 0)
  done;
  Db.flush db;
  let st = Db.io_stats db in
  check "flush writes attributed" true (Io_stats.bytes_written ~cls:Io_stats.C_flush st > 0);
  check "compaction writes attributed" true
    (Io_stats.bytes_written ~cls:Io_stats.C_compaction_write st > 0);
  check "compaction reads attributed" true
    (Io_stats.bytes_read ~cls:Io_stats.C_compaction_read st > 0);
  (* engine-side and device-side compaction byte counts must agree *)
  check_int "engine write ctr = device ctr"
    (Io_stats.bytes_written ~cls:Io_stats.C_compaction_write st)
    (Db.stats db).Stats.compaction_bytes_written;
  Db.close db

let test_config_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  check "zero buffer rejected" true
    (bad (fun () -> Config.validate { Config.default with write_buffer_size = 0 }));
  check "size ratio 1 rejected" true
    (bad (fun () ->
         Config.validate
           { Config.default with
             compaction = { Config.default.compaction with Lsm_compaction.Policy.size_ratio = 1 } }));
  check "monkey without budget rejected" true
    (bad (fun () -> Config.validate { Config.default with monkey_filters = true }));
  check "non-positive round cap rejected" true
    (bad (fun () -> Config.validate { Config.default with compaction_bytes_per_round = Some 0 }));
  Config.validate Config.default

(* Appended: recovery-time orphan cleanup. *)
let test_orphan_files_cleaned_on_open () =
  let dev = Device.in_memory () in
  let config = small_config () in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 1999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  (* Simulate a crash that left an unreferenced table behind. *)
  let w = Device.open_writer dev ~cls:Io_stats.C_misc "999999.sst" in
  Device.append w "garbage from an interrupted compaction";
  Device.close w;
  (* And an unrelated file that must NOT be touched. *)
  let w2 = Device.open_writer dev ~cls:Io_stats.C_misc "vlog-000001" in
  Device.append w2 "value log data";
  Device.close w2;
  let db2 = Db.open_db ~config ~dev () in
  check "orphan sst removed" false (Device.exists dev "999999.sst");
  check "non-table file preserved" true (Device.exists dev "vlog-000001");
  check_opt "data unaffected" (Some (value 55)) (Db.get db2 (key 55));
  Db.close db2

(* Appended: checkpoint/backup. *)
let test_checkpoint_roundtrip () =
  let dev = Device.in_memory () in
  let config = small_config () in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 2999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.delete db (key 11);
  let dest = Device.in_memory () in
  Db.checkpoint db ~dest;
  (* Source keeps evolving after the checkpoint... *)
  Db.put db ~key:(key 0) "mutated-after-checkpoint";
  Db.flush db;
  (* ...while the backup opens independently with the frozen state. *)
  let backup = Db.open_db ~config ~dev:dest () in
  check_opt "backup has original value" (Some (value 0)) (Db.get backup (key 0));
  check_opt "backup has the delete" None (Db.get backup (key 11));
  check_int "backup scan complete" 2999 (List.length (Db.scan backup ~lo:"" ~hi:None ()));
  check_opt "source has the mutation" (Some "mutated-after-checkpoint") (Db.get db (key 0));
  (* Backups of backups, and double-checkpoint protection. *)
  check "refuses occupied destination" true
    (try Db.checkpoint db ~dest; false with Invalid_argument _ -> true);
  Db.close backup;
  Db.close db

(* Appended: final property tests. *)

(* Snapshot-consistent scans under concurrent-looking mutation histories. *)
let prop_snapshot_scan_frozen =
  QCheck.Test.make ~name:"snapshot scans see a frozen world" ~count:25
    QCheck.(list_of_size Gen.(30 -- 150) (pair (int_bound 40) (int_bound 999)))
    (fun ops ->
      let dev = Device.in_memory () in
      let db = Db.open_db ~config:(small_config ()) ~dev () in
      (* Phase 1: apply half the ops, snapshot, record the expected view. *)
      let half = List.length ops / 2 in
      List.iteri
        (fun i (k, v) -> if i < half then Db.put db ~key:(key k) (string_of_int v))
        ops;
      let snap = Db.snapshot db in
      let frozen = Db.scan db ~snapshot:snap ~lo:"" ~hi:None () in
      (* Phase 2: keep mutating (including deletes) and compact hard. *)
      List.iteri
        (fun i (k, v) ->
          if i >= half then
            if v mod 4 = 0 then Db.delete db (key k)
            else Db.put db ~key:(key k) ("new" ^ string_of_int v))
        ops;
      Db.major_compact db;
      let still = Db.scan db ~snapshot:snap ~lo:"" ~hi:None () in
      Db.release db snap;
      Db.close db;
      still = frozen)

(* WiscKey engine agrees with a model across updates and GC. *)
let prop_kvsep_matches_model =
  QCheck.Test.make ~name:"kv-separated engine = model (with gc)" ~count:15
    QCheck.(list_of_size Gen.(30 -- 200) (pair (int_bound 60) (int_bound 2)))
    (fun ops ->
      let dev = Device.in_memory () in
      let kdb =
        Lsm_kvsep.Kv_db.open_db ~config:(small_config ()) ~value_threshold:32
          ~segment_bytes:(8 * 1024) ~dev ()
      in
      let model = Hashtbl.create 64 in
      List.iteri
        (fun i (k, action) ->
          let k = key k in
          match action with
          | 0 ->
            Lsm_kvsep.Kv_db.delete kdb k;
            Hashtbl.remove model k
          | _ ->
            let v = Printf.sprintf "%04d-%s" i (String.make 60 'v') in
            Lsm_kvsep.Kv_db.put kdb ~key:k v;
            Hashtbl.replace model k v)
        ops;
      Lsm_kvsep.Kv_db.flush kdb;
      ignore (Lsm_kvsep.Kv_db.gc kdb ~max_segments:3 ());
      let ok =
        Hashtbl.fold
          (fun k v acc -> acc && Lsm_kvsep.Kv_db.get kdb k = Some v)
          model true
        && List.for_all
             (fun i -> Hashtbl.mem model (key i) || Lsm_kvsep.Kv_db.get kdb (key i) = None)
             (List.init 60 Fun.id)
      in
      Lsm_kvsep.Kv_db.close kdb;
      ok)

(* The analytic model's monotonicity: more filter memory never increases
   miss cost; a bigger buffer never increases levels. *)
let prop_cost_model_monotone =
  QCheck.Test.make ~name:"cost model monotonicity" ~count:200
    QCheck.(triple (int_range 2 16) (int_range 1 100) (int_range 0 20))
    (fun (t, buf_mib, bits) ->
      let w =
        {
          Lsm_cost.Model.entries = 5_000_000;
          entry_bytes = 100;
          page_bytes = 4096;
          f_insert = 0.5;
          f_point_lookup_hit = 0.25;
          f_point_lookup_miss = 0.25;
          f_short_scan = 0.0;
          f_long_scan = 0.0;
          long_scan_pages = 10.0;
        }
      in
      let d bits buf =
        { Lsm_cost.Model.layout = `Leveling; size_ratio = t;
          buffer_bytes = buf * 1024 * 1024; filter_bits_per_key = float_of_int bits }
      in
      Lsm_cost.Model.point_lookup_miss_cost (d (bits + 2) buf_mib) w
      <= Lsm_cost.Model.point_lookup_miss_cost (d bits buf_mib) w +. 1e-9
      && Lsm_cost.Model.levels (d bits (buf_mib * 2)) w
         <= Lsm_cost.Model.levels (d bits buf_mib) w)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("engine on real files", `Quick, test_engine_on_real_files);
    ("binary keys", `Quick, test_binary_keys);
    ("value larger than block", `Quick, test_value_larger_than_block);
    ("many snapshots", `Quick, test_many_snapshots);
    ("reopen many times", `Quick, test_reopen_many_times);
    ("compaction io attributed", `Quick, test_compaction_io_attributed);
    ("orphan files cleaned on open", `Quick, test_orphan_files_cleaned_on_open);
    ("checkpoint roundtrip", `Quick, test_checkpoint_roundtrip);
    ("config validation", `Quick, test_config_validation);
    qt prop_sstable_iterator_fuzz;
    qt prop_lru_matches_model;
    qt prop_frag_matches_model;
    qt prop_snapshot_scan_frozen;
    qt prop_kvsep_matches_model;
    qt prop_cost_model_monotone;
  ]



