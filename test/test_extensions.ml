(* Tests for the extension features: write batches, streaming fold,
   trivial moves, compaction throttling, xor filters, block compression,
   and secondary indexes. *)

module Device = Lsm_storage.Device
module Policy = Lsm_compaction.Policy
module Lz = Lsm_util.Lz
module Codec = Lsm_util.Codec
open Lsm_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option string))

let small_config ?(compaction = Policy.default) () =
  {
    Config.default with
    write_buffer_size = 8 * 1024;
    level1_capacity = 32 * 1024;
    target_file_size = 16 * 1024;
    block_size = 1024;
    compaction = { compaction with Policy.size_ratio = 4; level0_limit = 2 };
    paranoid_checks = true;
  }

let fresh ?config () =
  let dev = Device.in_memory () in
  let config = Option.value ~default:(small_config ()) config in
  (dev, Db.open_db ~config ~dev ())

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

(* ---------- write batches ---------- *)

let test_batch_applies_all_ops () =
  let _, db = fresh () in
  Db.put db ~key:"gone" "x";
  let b = Write_batch.create () in
  Write_batch.put b ~key:"a" "1";
  Write_batch.put b ~key:"b" "2";
  Write_batch.delete b "gone";
  Write_batch.merge b ~key:"a" "ignored-without-operator";
  check_int "length" 4 (Write_batch.length b);
  Db.apply_batch db b;
  check_opt "a (merge acts as put)" (Some "ignored-without-operator") (Db.get db "a");
  check_opt "b" (Some "2") (Db.get db "b");
  check_opt "deleted in batch" None (Db.get db "gone");
  Db.close db

let test_batch_crash_atomicity () =
  (* Without per-write sync, an unsynced batch vanishes entirely. *)
  let dev = Device.in_memory () in
  let config = { (small_config ()) with Config.wal_sync_every_write = false } in
  let db = Db.open_db ~config ~dev () in
  Db.put db ~key:"pre" "kept";
  Db.flush db (* makes 'pre' durable *);
  let b = Write_batch.create () in
  Write_batch.put b ~key:"x" "1";
  Write_batch.put b ~key:"y" "2";
  Db.apply_batch db b;
  Device.crash dev;
  let db2 = Db.open_db ~config ~dev () in
  check_opt "pre survives" (Some "kept") (Db.get db2 "pre");
  let x = Db.get db2 "x" and y = Db.get db2 "y" in
  check "batch is all-or-nothing" true
    ((x = None && y = None) || (x = Some "1" && y = Some "2"));
  Db.close db2;
  (* With sync, the whole batch must survive. *)
  let dev2 = Device.in_memory () in
  let config2 = { config with Config.wal_sync_every_write = true } in
  let db3 = Db.open_db ~config:config2 ~dev:dev2 () in
  let b2 = Write_batch.create () in
  Write_batch.put b2 ~key:"x" "1";
  Write_batch.range_delete b2 ~lo:"q" ~hi:"r";
  Db.apply_batch db3 b2;
  Device.crash dev2;
  let db4 = Db.open_db ~config:config2 ~dev:dev2 () in
  check_opt "synced batch survives crash" (Some "1") (Db.get db4 "x");
  Db.close db4

let test_batch_empty_and_clear () =
  let _, db = fresh () in
  let b = Write_batch.create () in
  check "empty" true (Write_batch.is_empty b);
  Db.apply_batch db b (* no-op *);
  Write_batch.put b ~key:"k" "v";
  Write_batch.clear b;
  check "cleared" true (Write_batch.is_empty b);
  Db.apply_batch db b;
  check_opt "nothing applied" None (Db.get db "k");
  Db.close db

(* ---------- fold ---------- *)

let test_fold_equals_scan () =
  let _, db = fresh () in
  for i = 0 to 999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.delete db (key 500);
  let folded =
    List.rev (Db.fold db ~lo:(key 400) ~hi:(Some (key 600)) ~init:[]
                ~f:(fun acc k v -> (k, v) :: acc) ())
  in
  let scanned = Db.scan db ~lo:(key 400) ~hi:(Some (key 600)) () in
  check "fold = scan" true (folded = scanned);
  check_int "deleted key excluded" 199 (List.length folded);
  Db.close db

let test_fold_limit_and_early_bound () =
  let _, db = fresh () in
  for i = 0 to 99 do
    Db.put db ~key:(key i) "v"
  done;
  let n = Db.fold db ~limit:5 ~lo:"" ~hi:None ~init:0 ~f:(fun acc _ _ -> acc + 1) () in
  check_int "limit respected" 5 n;
  Db.close db

(* ---------- trivial moves ---------- *)

let test_trivial_move_fires_and_preserves_data () =
  (* Sequential (non-overlapping) ingest gives pure move-down chances. *)
  let _, db = fresh () in
  for i = 0 to 9999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  check "trivial moves happened" true ((Db.stats db).Stats.trivial_moves > 0);
  for i = 0 to 9999 do
    if Db.get db (key i) <> Some (value i) then Alcotest.failf "key %d lost by trivial move" i
  done;
  (match Db.check_invariants db with Ok () -> () | Error e -> Alcotest.fail e);
  Db.close db

let test_trivial_move_reduces_wa () =
  let ingest allow =
    let dev = Device.in_memory () in
    let config = { (small_config ()) with Config.allow_trivial_move = allow } in
    let db = Db.open_db ~config ~dev () in
    for i = 0 to 9999 do
      Db.put db ~key:(key i) (value i)
    done;
    Db.flush db;
    let wa = Db.write_amplification db in
    Db.close db;
    wa
  in
  let with_tm = ingest true and without = ingest false in
  check
    (Printf.sprintf "WA with moves %.2f <= without %.2f" with_tm without)
    true (with_tm <= without)

let test_trivial_move_disabled_never_fires () =
  let config = { (small_config ()) with Config.allow_trivial_move = false } in
  let _, db = fresh ~config () in
  for i = 0 to 9999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  check_int "no trivial moves" 0 (Db.stats db).Stats.trivial_moves;
  Db.close db

(* ---------- compaction throttling ---------- *)

let test_throttling_caps_stall_bursts () =
  let run cap =
    let dev = Device.in_memory () in
    (* Stall bursts are a synchronous-writer phenomenon: pin Inline so
       the comparison is meaningful under the Background CI matrix leg. *)
    let config =
      { (small_config ()) with
        Config.compaction_bytes_per_round = cap;
        compaction_backend = Config.Inline }
    in
    let db = Db.open_db ~config ~dev () in
    let rng = Lsm_util.Rng.create 5 in
    for _ = 1 to 20_000 do
      Db.put db ~key:(key (Lsm_util.Rng.int rng 4000)) (value 0)
    done;
    let worst = Lsm_util.Histogram.max_value (Db.stats db).Stats.stall_burst_bytes in
    (* Correctness unaffected. *)
    check_opt "data intact" (Some (value 0)) (Db.get db (key 0));
    Db.close db;
    worst
  in
  let unthrottled = run None in
  let throttled = run (Some (64 * 1024)) in
  check
    (Printf.sprintf "throttled worst stall %d < unthrottled %d" throttled unthrottled)
    true
    (throttled < unthrottled)

(* ---------- xor filter ---------- *)

let xkeys n = List.init n (fun i -> Printf.sprintf "xor%07d" i)

let test_xor_no_false_negatives () =
  let f = Lsm_filter.Xor_filter.build (xkeys 5000) in
  List.iter
    (fun k -> check ("member " ^ k) true (Lsm_filter.Xor_filter.mem f k))
    (xkeys 5000)

let test_xor_fpr_and_size () =
  let n = 5000 in
  let f = Lsm_filter.Xor_filter.build (xkeys n) in
  let fp = ref 0 in
  for i = 0 to 19_999 do
    if Lsm_filter.Xor_filter.mem f (Printf.sprintf "no%07d" i) then incr fp
  done;
  check (Printf.sprintf "fpr %d/20000 < 1%%" !fp) true (!fp < 200);
  let bits_per_key = float_of_int (Lsm_filter.Xor_filter.bit_count f) /. float_of_int n in
  check (Printf.sprintf "%.2f bits/key near 9.84" bits_per_key) true
    (bits_per_key > 9.0 && bits_per_key < 11.5)

let test_xor_roundtrip () =
  let f = Lsm_filter.Xor_filter.build (xkeys 500) in
  let g = Lsm_filter.Xor_filter.decode (Lsm_filter.Xor_filter.encode f) in
  List.iter (fun k -> check "decoded member" true (Lsm_filter.Xor_filter.mem g k)) (xkeys 500)

let test_xor_empty_and_duplicates () =
  let f = Lsm_filter.Xor_filter.build [] in
  ignore (Lsm_filter.Xor_filter.mem f "anything");
  let g = Lsm_filter.Xor_filter.build [ "dup"; "dup"; "dup"; "other" ] in
  check "dup member" true (Lsm_filter.Xor_filter.mem g "dup");
  check "other member" true (Lsm_filter.Xor_filter.mem g "other")

let test_xor_in_engine () =
  let config = { (small_config ()) with Config.filter = Lsm_filter.Point_filter.Xor } in
  let _, db = fresh ~config () in
  for i = 0 to 2999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  for i = 0 to 2999 do
    if Db.get db (key i) <> Some (value i) then Alcotest.failf "xor engine lost key %d" i
  done;
  (* zero-result lookups mostly skipped *)
  let before = (Db.stats db).Stats.filter_negatives in
  for i = 0 to 499 do
    ignore (Db.get db (key i ^ "x"))
  done;
  check "xor filter rejects absentees" true ((Db.stats db).Stats.filter_negatives - before > 450);
  Db.close db

(* ---------- lz compression ---------- *)

let test_lz_roundtrip_basic () =
  List.iter
    (fun s ->
      let c = Lz.compress s in
      Alcotest.(check string) "roundtrip" s (Lz.decompress c ~expected_len:(String.length s)))
    [
      ""; "a"; "abc"; String.make 1000 'z';
      "abcabcabcabcabcabcabcabc";
      String.concat "" (List.init 100 (fun i -> Printf.sprintf "key%06d=value%06d;" i i));
    ]

let test_lz_compresses_repetitive_data () =
  let s = String.concat "" (List.init 200 (fun i -> Printf.sprintf "user%06d|field|" i)) in
  let c = Lz.compress s in
  check
    (Printf.sprintf "compressed %d < 60%% of %d" (String.length c) (String.length s))
    true
    (String.length c * 10 < String.length s * 6)

let test_lz_rejects_corruption () =
  let s = String.concat "" (List.init 50 (fun i -> Printf.sprintf "row%04d" i)) in
  let c = Lz.compress s in
  check "wrong length rejected" true
    (try ignore (Lz.decompress c ~expected_len:(String.length s + 1)); false
     with Codec.Corrupt _ -> true)

let prop_lz_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip (random)" ~count:300
    QCheck.(string_gen_of_size Gen.(0 -- 2000) Gen.(char_range 'a' 'h'))
    (fun s -> Lz.decompress (Lz.compress s) ~expected_len:(String.length s) = s)

let prop_lz_roundtrip_binary =
  QCheck.Test.make ~name:"lz roundtrip (binary)" ~count:200
    QCheck.(string_gen_of_size Gen.(0 -- 1000) Gen.char)
    (fun s -> Lz.decompress (Lz.compress s) ~expected_len:(String.length s) = s)

let test_compression_in_engine () =
  let run compression =
    let dev = Device.in_memory () in
    let config = { (small_config ()) with Config.compression } in
    let db = Db.open_db ~config ~dev () in
    for i = 0 to 4999 do
      Db.put db ~key:(key i) (value i)
    done;
    Db.flush db;
    for i = 0 to 4999 do
      if Db.get db (key i) <> Some (value i) then Alcotest.failf "compressed engine lost %d" i
    done;
    let bytes = Lsm_core.Version.total_bytes (Db.version db) in
    Db.close db;
    bytes
  in
  let raw = run Lsm_sstable.Sstable.C_none in
  let packed = run Lsm_sstable.Sstable.C_lz in
  check (Printf.sprintf "compressed tree %d < raw %d" packed raw) true (packed < raw)

(* ---------- secondary indexes ---------- *)

module Idx = Lsm_index.Indexed_db

let color_index =
  {
    Idx.index_name = "color";
    extract = (fun ~key:_ ~value -> match String.split_on_char ',' value with c :: _ -> [ c ] | [] -> []);
  }

let tag_index =
  {
    Idx.index_name = "tags";
    extract =
      (fun ~key:_ ~value ->
        match String.split_on_char ',' value with _ :: tags -> tags | [] -> []);
  }

let fresh_indexed () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  (dev, Idx.create ~db ~indexes:[ color_index; tag_index ])

let test_index_put_lookup () =
  let _, idx = fresh_indexed () in
  Idx.put idx ~key:"car1" "red,fast";
  Idx.put idx ~key:"car2" "blue,fast,cheap";
  Idx.put idx ~key:"car3" "red,cheap";
  Alcotest.(check (list string)) "red cars" [ "car1"; "car3" ]
    (Idx.lookup_keys idx ~index:"color" ~term:"red");
  Alcotest.(check (list string)) "fast cars" [ "car1"; "car2" ]
    (Idx.lookup_keys idx ~index:"tags" ~term:"fast");
  let reds = Idx.lookup idx ~index:"color" ~term:"red" in
  check "lookup returns values" true (List.assoc "car1" reds = "red,fast")

let test_index_update_moves_terms () =
  let _, idx = fresh_indexed () in
  Idx.put idx ~key:"car1" "red,fast";
  Idx.put idx ~key:"car1" "blue,fast" (* repaint *);
  Alcotest.(check (list string)) "not red anymore" []
    (Idx.lookup_keys idx ~index:"color" ~term:"red");
  Alcotest.(check (list string)) "now blue" [ "car1" ]
    (Idx.lookup_keys idx ~index:"color" ~term:"blue");
  Alcotest.(check (list string)) "kept tag" [ "car1" ]
    (Idx.lookup_keys idx ~index:"tags" ~term:"fast")

let test_index_delete_cleans_entries () =
  let _, idx = fresh_indexed () in
  Idx.put idx ~key:"car1" "red,fast";
  Idx.delete idx "car1";
  check_opt "record gone" None (Idx.get idx "car1");
  Alcotest.(check (list string)) "index entry gone" []
    (Idx.lookup_keys idx ~index:"color" ~term:"red");
  check_int "no live color entries" 0 (Idx.index_entry_count idx ~index:"color")

let test_index_scan_hides_index_entries () =
  let _, idx = fresh_indexed () in
  Idx.put idx ~key:"a" "red";
  Idx.put idx ~key:"b" "blue";
  let got = Idx.scan idx ~lo:"" ~hi:None () in
  Alcotest.(check (list (pair string string)))
    "records only, unprefixed"
    [ ("a", "red"); ("b", "blue") ]
    got

let test_index_survives_flush_and_reopen () =
  let dev = Device.in_memory () in
  let config = { (small_config ()) with Config.wal_sync_every_write = true } in
  let db = Db.open_db ~config ~dev () in
  let idx = Idx.create ~db ~indexes:[ color_index ] in
  for i = 0 to 999 do
    Idx.put idx ~key:(key i) (if i mod 2 = 0 then "red,car" else "blue,car")
  done;
  Db.flush db;
  Db.close db;
  let db2 = Db.open_db ~config ~dev () in
  let idx2 = Idx.create ~db:db2 ~indexes:[ color_index ] in
  check_int "red set survives reopen" 500
    (List.length (Idx.lookup_keys idx2 ~index:"color" ~term:"red"));
  Db.close db2

let test_index_consistency_under_churn () =
  let _, idx = fresh_indexed () in
  let rng = Lsm_util.Rng.create 31 in
  let colors = [| "red"; "blue"; "green" |] in
  let model = Hashtbl.create 64 in
  for _ = 1 to 3000 do
    let k = key (Lsm_util.Rng.int rng 150) in
    if Lsm_util.Rng.bernoulli rng 0.15 then begin
      Idx.delete idx k;
      Hashtbl.remove model k
    end
    else begin
      let c = Lsm_util.Rng.pick rng colors in
      Idx.put idx ~key:k (c ^ ",x");
      Hashtbl.replace model k c
    end
  done;
  Array.iter
    (fun c ->
      let expected =
        Hashtbl.fold (fun k v acc -> if v = c then k :: acc else acc) model []
        |> List.sort compare
      in
      let got = Idx.lookup_keys idx ~index:"color" ~term:c in
      if got <> expected then
        Alcotest.failf "index drift for %s: %d vs %d" c (List.length got)
          (List.length expected))
    colors

(* ---------- runtime memory knobs & adaptive controller ---------- *)

let test_runtime_memory_knobs () =
  let _, db = fresh () in
  check_int "initial buffer size" (8 * 1024) (Db.write_buffer_size db);
  for i = 0 to 50 do
    Db.put db ~key:(key i) (value i)
  done;
  (* Shrinking below the current footprint rotates immediately. *)
  Db.set_write_buffer_size db 1024;
  check_int "new threshold" 1024 (Db.write_buffer_size db);
  check_opt "data intact after forced rotation" (Some (value 7)) (Db.get db (key 7));
  Db.set_block_cache_bytes db 2048;
  check "cache shrunk" true
    (Lsm_storage.Block_cache.capacity (Db.block_cache db) = 2048
    && Lsm_storage.Block_cache.used_bytes (Db.block_cache db) <= 2048);
  Db.set_block_cache_bytes db (1 lsl 20);
  check_opt "still consistent" (Some (value 13)) (Db.get db (key 13));
  Db.close db

let test_adaptive_moves_toward_writes () =
  let _, db = fresh () in
  let ctrl = Adaptive_memory.create ~db ~total_bytes:(256 * 1024) () in
  let before = Adaptive_memory.buffer_bytes ctrl in
  let rng = Lsm_util.Rng.create 3 in
  (* Pure write phases: every epoch should push memory to the buffer. *)
  for _ = 1 to 5 do
    for _ = 1 to 4000 do
      Db.put db ~key:(key (Lsm_util.Rng.int rng 3000)) (value 0)
    done;
    Adaptive_memory.epoch ctrl
  done;
  check "buffer grew under write load" true (Adaptive_memory.buffer_bytes ctrl > before);
  check "split sums to budget" true
    (Adaptive_memory.buffer_bytes ctrl + Adaptive_memory.cache_bytes ctrl = 256 * 1024);
  check_int "five epochs" 5 (Adaptive_memory.epochs ctrl);
  Db.close db

let test_adaptive_moves_toward_reads () =
  let _, db = fresh () in
  (* preload, then read-only phases *)
  for i = 0 to 2999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  let ctrl = Adaptive_memory.create ~db ~total_bytes:(64 * 1024) () in
  let rng = Lsm_util.Rng.create 4 in
  for _ = 1 to 6 do
    for _ = 1 to 3000 do
      ignore (Db.get db (key (Lsm_util.Rng.int rng 3000)))
    done;
    Adaptive_memory.epoch ctrl
  done;
  check "cache grew under read load" true
    (Adaptive_memory.cache_bytes ctrl > 32 * 1024);
  check "respects the floor" true
    (Adaptive_memory.buffer_bytes ctrl >= 6 * 1024);
  Db.close db

(* ---------- compactionary ---------- *)

let test_compactionary_lookup () =
  check "finds rocksdb-leveled" true
    (Lsm_compaction.Compactionary.find "RocksDB-Leveled" <> None);
  check "unknown is none" true (Lsm_compaction.Compactionary.find "nope" = None);
  check_int "ten strategies" 10 (List.length Lsm_compaction.Compactionary.names);
  check "describe renders" true
    (String.length (Lsm_compaction.Compactionary.describe_all ()) > 100)

let test_compactionary_policies_run () =
  (* Every preset must drive the engine correctly end to end. *)
  List.iter
    (fun (nm, _, policy) ->
      let policy = { policy with Lsm_compaction.Policy.size_ratio = 4; level0_limit = 2 } in
      let dev = Device.in_memory () in
      let db = Db.open_db ~config:(small_config ~compaction:policy ()) ~dev () in
      for i = 0 to 2999 do
        Db.put db ~key:(key (i mod 600)) (value i)
      done;
      Db.flush db;
      for i = 0 to 599 do
        if Db.get db (key i) = None then Alcotest.failf "%s lost key %d" nm i
      done;
      (match Db.check_invariants db with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" nm e);
      Db.close db)
    Lsm_compaction.Compactionary.all

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("batch applies all ops", `Quick, test_batch_applies_all_ops);
    ("batch crash atomicity", `Quick, test_batch_crash_atomicity);
    ("batch empty & clear", `Quick, test_batch_empty_and_clear);
    ("fold equals scan", `Quick, test_fold_equals_scan);
    ("fold limit", `Quick, test_fold_limit_and_early_bound);
    ("trivial move fires, data intact", `Quick, test_trivial_move_fires_and_preserves_data);
    ("trivial move reduces WA", `Quick, test_trivial_move_reduces_wa);
    ("trivial move disabled", `Quick, test_trivial_move_disabled_never_fires);
    ("throttling caps stall bursts", `Quick, test_throttling_caps_stall_bursts);
    ("xor: no false negatives", `Quick, test_xor_no_false_negatives);
    ("xor: fpr & size", `Quick, test_xor_fpr_and_size);
    ("xor: roundtrip", `Quick, test_xor_roundtrip);
    ("xor: empty & duplicates", `Quick, test_xor_empty_and_duplicates);
    ("xor: engine integration", `Quick, test_xor_in_engine);
    ("lz roundtrip basic", `Quick, test_lz_roundtrip_basic);
    ("lz compresses repetitive data", `Quick, test_lz_compresses_repetitive_data);
    ("lz rejects corruption", `Quick, test_lz_rejects_corruption);
    ("compression in engine", `Quick, test_compression_in_engine);
    ("index: put/lookup", `Quick, test_index_put_lookup);
    ("index: update moves terms", `Quick, test_index_update_moves_terms);
    ("index: delete cleans entries", `Quick, test_index_delete_cleans_entries);
    ("index: scan hides index entries", `Quick, test_index_scan_hides_index_entries);
    ("index: survives reopen", `Quick, test_index_survives_flush_and_reopen);
    ("index: consistency under churn", `Quick, test_index_consistency_under_churn);
    ("runtime memory knobs", `Quick, test_runtime_memory_knobs);
    ("adaptive memory: writes grow buffer", `Quick, test_adaptive_moves_toward_writes);
    ("adaptive memory: reads grow cache", `Quick, test_adaptive_moves_toward_reads);
    ("compactionary lookup", `Quick, test_compactionary_lookup);
    ("compactionary presets all run", `Quick, test_compactionary_policies_run);
    qt prop_lz_roundtrip;
    qt prop_lz_roundtrip_binary;
  ]
