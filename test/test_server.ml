(* Serving front door: RESP framing units, quota windows, shard
   routing, and in-process end-to-end runs — the closed-loop simulator
   against a live server on an ephemeral Unix socket, with exact
   acked-write model checking, plus the graceful SHUTDOWN drain. *)

module Resp = Lsm_server.Resp
module Quota = Lsm_server.Quota
module Shard_map = Lsm_server.Shard_map
module Server = Lsm_server.Server
module Server_harness = Lsm_workload.Server_harness
module Config = Lsm_core.Config
module Db = Lsm_core.Db

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------- RESP framing ---------- *)

let test_resp_command_roundtrip () =
  let cmd = [ "MSET"; "k1"; "v\r\nwith crlf"; "k2"; String.make 300 'x' ] in
  let s = Resp.encode_command cmd in
  let b = Bytes.of_string s in
  (match Resp.parse_command b ~pos:0 ~len:(Bytes.length b) with
  | Some (got, consumed) ->
    Alcotest.(check (list string)) "args" cmd got;
    check_int "consumed all" (Bytes.length b) consumed
  | None -> Alcotest.fail "complete frame did not parse");
  (* Every strict prefix is Incomplete, never Malformed. *)
  for cut = 0 to Bytes.length b - 1 do
    match Resp.parse_command b ~pos:0 ~len:cut with
    | None -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "prefix of %d bytes parsed" cut)
  done

let test_resp_reply_roundtrip () =
  let replies =
    [
      Resp.Simple "OK";
      Resp.Error "ERR boom";
      Resp.Int (-42);
      Resp.Bulk "payload";
      Resp.Nil;
      Resp.Array [ Resp.Bulk "a"; Resp.Nil; Resp.Int 7 ];
    ]
  in
  List.iter
    (fun r ->
      let s = Resp.encode_reply r in
      let b = Bytes.of_string s in
      match Resp.parse_reply b ~pos:0 ~len:(Bytes.length b) with
      | Some (got, consumed) ->
        check_bool "roundtrip" true (got = r);
        check_int "consumed" (Bytes.length b) consumed
      | None -> Alcotest.fail "reply did not parse")
    replies

let test_resp_pipelined () =
  let s = Resp.encode_command [ "PING" ] ^ Resp.encode_command [ "GET"; "k" ] in
  let b = Bytes.of_string s in
  match Resp.parse_command b ~pos:0 ~len:(Bytes.length b) with
  | Some ([ "PING" ], p1) -> (
    match Resp.parse_command b ~pos:p1 ~len:(Bytes.length b) with
    | Some ([ "GET"; "k" ], p2) -> check_int "both consumed" (Bytes.length b) p2
    | _ -> Alcotest.fail "second frame")
  | _ -> Alcotest.fail "first frame"

let test_resp_malformed () =
  let raises s =
    let b = Bytes.of_string s in
    match Resp.parse_command b ~pos:0 ~len:(Bytes.length b) with
    | exception Resp.Malformed _ -> true
    | _ -> false
  in
  check_bool "bad type byte" true (raises "&3\r\n");
  check_bool "non-numeric arity" true (raises "*x\r\n");
  check_bool "hostile length" true (raises "*1\r\n$99999999999\r\n");
  check_bool "zero arity" true (raises "*0\r\n")

(* ---------- quota windows ---------- *)

let test_quota_window () =
  let q = Quota.create ~window_s:1.0 () in
  Quota.set_limits q ~tenant:"t" { Quota.max_ops = Some 3; max_bytes = Some 100 };
  let admit ~now ~ops ~bytes = Quota.admit q ~tenant:"t" ~now ~ops ~bytes in
  check_bool "under" true (Result.is_ok (admit ~now:0.0 ~ops:2 ~bytes:10));
  check_bool "exact" true (Result.is_ok (admit ~now:0.1 ~ops:1 ~bytes:10));
  (match admit ~now:0.2 ~ops:1 ~bytes:1 with
  | Error d ->
    check_bool "ops dimension" true (d.Quota.dimension = `Ops);
    check_int "denial charges nothing: used stays" 3 d.Quota.used
  | Ok () -> Alcotest.fail "fourth op admitted");
  (* Window rolls: usage resets. *)
  check_bool "next window" true (Result.is_ok (admit ~now:1.5 ~ops:3 ~bytes:99));
  (match admit ~now:1.6 ~ops:0 ~bytes:5 with
  | Error d -> check_bool "bytes dimension" true (d.Quota.dimension = `Bytes)
  | Ok () -> Alcotest.fail "byte overflow admitted");
  (* Unknown tenants are unlimited by default. *)
  check_bool "stranger" true
    (Result.is_ok (Quota.admit q ~tenant:"other" ~now:0.0 ~ops:1_000_000 ~bytes:max_int))

(* ---------- shard routing ---------- *)

let test_shard_routing () =
  let map = Shard_map.open_shards ~count:4 ~mode:`Memory () in
  Fun.protect ~finally:(fun () -> Shard_map.close_all map) @@ fun () ->
  check_bool "tenant with NUL rejected" true
    (match Shard_map.encode_key ~tenant:"a\x00b" "k" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "NUL tenant invalid" false (Shard_map.valid_tenant "a\x00b");
  check_bool "empty tenant invalid" false (Shard_map.valid_tenant "");
  (* Routing is deterministic and spreads: 256 keys must touch every
     shard (probability of a miss is ~1e-28 for a uniform hash). *)
  let hit = Array.make 4 0 in
  for i = 0 to 255 do
    let stored = Shard_map.encode_key ~tenant:"t" (string_of_int i) in
    let s = Shard_map.shard_of_key map stored in
    check_int "stable" s (Shard_map.shard_of_key map stored);
    hit.(s) <- hit.(s) + 1
  done;
  Array.iteri (fun i n -> check_bool (Printf.sprintf "shard %d hit" i) true (n > 0)) hit;
  (* multi_get crosses shards and preserves input order. *)
  let keys = List.init 64 (fun i -> Shard_map.encode_key ~tenant:"t" (string_of_int i)) in
  List.iteri
    (fun i k -> Db.put (Shard_map.db map (Shard_map.shard_of_key map k)) ~key:k (string_of_int i))
    keys;
  let got = Shard_map.multi_get map keys in
  List.iteri
    (fun i r -> Alcotest.(check (option string)) "order kept" (Some (string_of_int i)) r)
    got

(* ---------- raw in-process client ---------- *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lsm-%s-%d.sock" name (Unix.getpid ()))

let pump server () = ignore (Server.step server ~timeout:0.0)

type raw = { fd : Unix.file_descr; mutable buf : Bytes.t; mutable len : int }

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN), _, _) -> ());
  { fd; buf = Bytes.create 4096; len = 0 }

let raw_close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Send a command and pump the single-threaded server until its reply
   arrives (both sides share this domain, so every blocking wait must
   interleave server steps). *)
let rpc server c args =
  let s = Resp.encode_command args in
  let off = ref 0 in
  while !off < String.length s do
    pump server ();
    match Unix.write_substring c.fd s !off (String.length s - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let result = ref None in
  while !result = None do
    if Unix.gettimeofday () > deadline then Alcotest.fail "rpc timeout";
    pump server ();
    (match Resp.parse_reply c.buf ~pos:0 ~len:c.len with
    | Some (r, consumed) ->
      Bytes.blit c.buf consumed c.buf 0 (c.len - consumed);
      c.len <- c.len - consumed;
      result := Some r
    | None -> (
      if c.len + 4096 > Bytes.length c.buf then begin
        let nb = Bytes.create (Bytes.length c.buf * 2) in
        Bytes.blit c.buf 0 nb 0 c.len;
        c.buf <- nb
      end;
      match Unix.read c.fd c.buf c.len 4096 with
      | n -> c.len <- c.len + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()))
  done;
  Option.get !result

let small_server ?quota ~name ~shards ~fanout () =
  let config =
    {
      Config.default with
      write_buffer_size = 16 * 1024;
      level1_capacity = 64 * 1024;
      compaction_backend = Config.Background;
      compaction_workers = 2;
      wal_enabled = false;
    }
  in
  let map = Shard_map.open_shards ~config ~fanout_workers:fanout ~count:shards ~mode:`Memory () in
  let server = Server.create ?quota ~shards:map ~sock_path:(sock_path name) () in
  (map, server)

(* ---------- wire-level behavior ---------- *)

let test_server_basic_commands () =
  let map, server = small_server ~name:"basic" ~shards:4 ~fanout:0 () in
  Fun.protect ~finally:(fun () ->
      Server.close server;
      Shard_map.close_all map)
  @@ fun () ->
  let c = raw_connect (Server.sock_path server) in
  Fun.protect ~finally:(fun () -> raw_close c) @@ fun () ->
  check_bool "ping" true (rpc server c [ "PING" ] = Resp.Simple "PONG");
  (* Data commands demand a tenant binding. *)
  (match rpc server c [ "GET"; "k" ] with
  | Resp.Error e -> check_str "notenant" "NOTENANT" (Option.get (Resp.error_code (Resp.Error e)))
  | _ -> Alcotest.fail "unbound GET accepted");
  check_bool "bind" true (rpc server c [ "TENANT"; "acme" ] = Resp.Simple "OK");
  check_bool "put" true (rpc server c [ "PUT"; "k"; "v1" ] = Resp.Simple "OK");
  check_bool "get" true (rpc server c [ "GET"; "k" ] = Resp.Bulk "v1");
  check_bool "del" true (rpc server c [ "DEL"; "k" ] = Resp.Simple "OK");
  check_bool "get after del" true (rpc server c [ "GET"; "k" ] = Resp.Nil);
  check_bool "mset" true
    (rpc server c [ "MSET"; "a"; "1"; "b"; "2"; "c"; "3" ] = Resp.Simple "OK");
  check_bool "mget" true
    (rpc server c [ "MGET"; "a"; "missing"; "c" ]
    = Resp.Array [ Resp.Bulk "1"; Resp.Nil; Resp.Bulk "3" ]);
  (match rpc server c [ "STATS" ] with
  | Resp.Bulk s -> check_bool "stats mentions shards" true (String.length s > 0)
  | _ -> Alcotest.fail "STATS");
  check_bool "flush" true (rpc server c [ "FLUSH" ] = Resp.Simple "OK");
  check_bool "get after flush" true (rpc server c [ "GET"; "a" ] = Resp.Bulk "1")

let test_server_tenant_isolation () =
  let map, server = small_server ~name:"iso" ~shards:4 ~fanout:0 () in
  Fun.protect ~finally:(fun () ->
      Server.close server;
      Shard_map.close_all map)
  @@ fun () ->
  let a = raw_connect (Server.sock_path server) in
  let b = raw_connect (Server.sock_path server) in
  Fun.protect ~finally:(fun () ->
      raw_close a;
      raw_close b)
  @@ fun () ->
  ignore (rpc server a [ "TENANT"; "alpha" ]);
  ignore (rpc server b [ "TENANT"; "beta" ]);
  ignore (rpc server a [ "PUT"; "shared-key"; "alpha-value" ]);
  check_bool "other tenant blind" true (rpc server b [ "GET"; "shared-key" ] = Resp.Nil);
  check_bool "owner sees it" true
    (rpc server a [ "GET"; "shared-key" ] = Resp.Bulk "alpha-value")

let test_server_quota_denial () =
  let quota = Quota.create ~window_s:3600.0 () in
  let map, server = small_server ~quota ~name:"quota" ~shards:2 ~fanout:0 () in
  Fun.protect ~finally:(fun () ->
      Server.close server;
      Shard_map.close_all map)
  @@ fun () ->
  let c = raw_connect (Server.sock_path server) in
  Fun.protect ~finally:(fun () -> raw_close c) @@ fun () ->
  ignore (rpc server c [ "TENANT"; "capped" ]);
  check_bool "set quota" true (rpc server c [ "QUOTA"; "capped"; "3"; "-" ] = Resp.Simple "OK");
  let denied = ref 0 and ok = ref 0 in
  for i = 1 to 6 do
    match rpc server c [ "PUT"; Printf.sprintf "k%d" i; "v" ] with
    | Resp.Simple _ -> incr ok
    | Resp.Error e when Resp.error_code (Resp.Error e) = Some "QUOTA_EXCEEDED" ->
      incr denied
    | _ -> Alcotest.fail "unexpected reply"
  done;
  check_int "admitted to the limit" 3 !ok;
  check_int "denied past the limit" 3 !denied;
  (* Another tenant on the same server is unaffected. *)
  let c2 = raw_connect (Server.sock_path server) in
  Fun.protect ~finally:(fun () -> raw_close c2) @@ fun () ->
  ignore (rpc server c2 [ "TENANT"; "free" ]);
  check_bool "other tenant unaffected" true
    (rpc server c2 [ "PUT"; "k"; "v" ] = Resp.Simple "OK");
  check_int "denials counted" 3 (Server.stats server).Server.quota_denials

(* ---------- end-to-end: simulator against a live server ---------- *)

let run_e2e ~name ~fanout ~connections ~ops () =
  let map, server = small_server ~name ~shards:4 ~fanout () in
  Fun.protect ~finally:(fun () -> Shard_map.close_all map) @@ fun () ->
  let report =
    Server_harness.run
      {
        Server_harness.default with
        sock_path = Server.sock_path server;
        connections;
        tenants = 6;
        keys_per_client = 32;
        value_size = 64;
        total_ops = ops;
        mget_group = 6;
        seed = 11;
        (* Low enough that every client reconnects at least once within
           its ~ops/connections share of the run. *)
        reconnect_every = 15;
        pump = pump server;
      }
  in
  (* In-flight ops finish after the global target is reached, so the
     count can overshoot by up to one op per connection. *)
  check_bool "all ops completed" true (report.Server_harness.ops_done >= ops);
  check_int "zero model violations" 0 report.Server_harness.model_violations;
  check_int "zero torn group reads" 0 report.Server_harness.torn_mgets;
  check_int "zero server errors" 0 report.Server_harness.server_errors;
  check_bool "writes acked" true (report.Server_harness.writes_acked > 0);
  check_bool "reconnect verification ran" true (report.Server_harness.verified_keys > 0);
  (* Graceful shutdown: +OK, then the listener drains and exits. *)
  let c = raw_connect (Server.sock_path server) in
  check_bool "shutdown acked" true (rpc server c [ "SHUTDOWN" ] = Resp.Simple "OK");
  raw_close c;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let running = ref true in
  while !running do
    if Unix.gettimeofday () > deadline then Alcotest.fail "drain timeout";
    running := Server.step server ~timeout:0.01
  done;
  check_bool "socket file removed" false (Sys.file_exists (Server.sock_path server))

let test_e2e_sequential () = run_e2e ~name:"e2e-seq" ~fanout:0 ~connections:40 ~ops:2_500 ()
let test_e2e_fanout () = run_e2e ~name:"e2e-fan" ~fanout:4 ~connections:60 ~ops:3_000 ()

let suite =
  [
    Alcotest.test_case "resp: command roundtrip + incremental prefixes" `Quick
      test_resp_command_roundtrip;
    Alcotest.test_case "resp: reply roundtrip" `Quick test_resp_reply_roundtrip;
    Alcotest.test_case "resp: pipelined frames" `Quick test_resp_pipelined;
    Alcotest.test_case "resp: malformed input raises" `Quick test_resp_malformed;
    Alcotest.test_case "quota: fixed windows, typed denials" `Quick test_quota_window;
    Alcotest.test_case "shard map: routing, isolation encoding, ordered mget" `Quick
      test_shard_routing;
    Alcotest.test_case "server: command set over the wire" `Quick test_server_basic_commands;
    Alcotest.test_case "server: tenant namespaces are disjoint" `Quick
      test_server_tenant_isolation;
    Alcotest.test_case "server: quota denial is typed and per-tenant" `Quick
      test_server_quota_denial;
    Alcotest.test_case "server: e2e simulator, sequential shards" `Slow test_e2e_sequential;
    Alcotest.test_case "server: e2e simulator, pooled fan-out + shutdown drain" `Slow
      test_e2e_fanout;
  ]
