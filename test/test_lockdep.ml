(* Runtime lockdep: Ordered_mutex turns rank inversions, same-rank
   double acquisitions, and re-entrancy into deterministic Violation
   raises when enforcement is on — and costs nothing observable when
   off. The whole tier-1 suite additionally runs under LSM_LOCKDEP=1 in
   CI, so every engine lock path is exercised with checking live. *)

module Om = Lsm_util.Ordered_mutex
module Domain_pool = Lsm_util.Domain_pool
module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Policy = Lsm_compaction.Policy

let with_enforce b f =
  let prev = Om.enabled () in
  Om.set_enforce b;
  Fun.protect ~finally:(fun () -> Om.set_enforce prev) f

let expect_violation what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Ordered_mutex.Violation" what
  | exception Om.Violation _ -> ()

let db_m () = Om.create ~rank:Om.Rank.db ~name:"db.id"
let shard_m () = Om.create ~rank:Om.Rank.block_cache_shard ~name:"block_cache.shard"

let test_clean_ordering () =
  with_enforce true @@ fun () ->
  let locks =
    [
      db_m ();
      Om.create ~rank:Om.Rank.table_cache ~name:"table_cache";
      shard_m ();
      Om.create ~rank:Om.Rank.device ~name:"device";
      Om.create ~rank:Om.Rank.stats ~name:"io_stats";
    ]
  in
  (* Acquire the whole hierarchy in rank order, nested. *)
  let rec nest = function
    | [] ->
      Alcotest.(check int) "all five held" 5 (List.length (Om.held_names ()))
    | l :: tl -> Om.with_lock l (fun () -> nest tl)
  in
  nest locks;
  Alcotest.(check (list string)) "all released" [] (Om.held_names ())

let test_rank_inversion_detected () =
  with_enforce true @@ fun () ->
  let db = db_m () and shard = shard_m () in
  (* The correct direction works... *)
  Om.with_lock db (fun () -> Om.with_lock shard (fun () -> ()));
  (* ...the deliberate inversion — block_cache shard before db — raises. *)
  expect_violation "shard-then-db" (fun () ->
      Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ())))

let test_same_rank_detected () =
  with_enforce true @@ fun () ->
  let a = shard_m () and b = shard_m () in
  expect_violation "two shards at once" (fun () ->
      Om.with_lock a (fun () -> Om.with_lock b (fun () -> ())))

let test_reentrancy_detected () =
  with_enforce true @@ fun () ->
  let m = db_m () in
  expect_violation "re-entrant with_lock" (fun () ->
      Om.with_lock m (fun () -> Om.with_lock m (fun () -> ())))

let test_violation_leaves_no_residue () =
  with_enforce true @@ fun () ->
  let db = db_m () and shard = shard_m () in
  expect_violation "inversion" (fun () ->
      Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ())));
  (* The failed acquisition held nothing: the stack is exactly empty
     and both locks remain usable in the correct order. *)
  Alcotest.(check (list string)) "stack empty after violation" [] (Om.held_names ());
  Om.with_lock db (fun () -> Om.with_lock shard (fun () -> ()))

let test_exception_releases_lock () =
  with_enforce true @@ fun () ->
  let m = db_m () in
  (try Om.with_lock m (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (list string)) "released on raise" [] (Om.held_names ());
  Om.with_lock m (fun () -> ())

let test_enforcement_off_is_silent () =
  with_enforce false @@ fun () ->
  let db = db_m () and shard = shard_m () in
  (* Inverted and even "re-entrant-looking" sequential use: no raise
     (and no deadlock, since nothing actually nests on the same lock). *)
  Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ()));
  Alcotest.(check bool) "disabled" false (Om.enabled ())

let test_domain_pool_under_lockdep () =
  with_enforce true @@ fun () ->
  let pool = Domain_pool.create ~size:3 in
  let squares = Domain_pool.map_list pool (fun x -> x * x) (List.init 50 Fun.id) in
  Alcotest.(check (list int)) "pool works under lockdep"
    (List.init 50 (fun i -> i * i))
    squares;
  Domain_pool.shutdown pool

(* A real engine smoke test: flushes, parallel subcompactions, fanned
   multi_get and cache churn all run with enforcement live — any lock
   acquired out of rank order anywhere on those paths would raise. *)
let test_engine_under_lockdep () =
  with_enforce true @@ fun () ->
  let dev = Device.in_memory () in
  let config =
    {
      (Config.default) with
      write_buffer_size = 4 * 1024;
      level1_capacity = 16 * 1024;
      target_file_size = 8 * 1024;
      block_size = 1024;
      compaction = Policy.leveled ~size_ratio:4 ();
      compaction_parallelism = 2;
      block_cache_shards = 4;
      max_open_tables = 8;
      wal_enabled = false;
    }
  in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 999 do
    Db.put db ~key:(Printf.sprintf "key-%04d" (i mod 250)) (Printf.sprintf "v%d" i)
  done;
  Db.flush db;
  while Db.compact_once db do () done;
  let keys = List.init 250 (fun i -> Printf.sprintf "key-%04d" i) in
  let hits = Db.multi_get db keys |> List.filter Option.is_some |> List.length in
  Alcotest.(check int) "every key readable" 250 hits;
  Db.close db

let suite =
  [
    Alcotest.test_case "clean rank ordering passes" `Quick test_clean_ordering;
    Alcotest.test_case "rank inversion detected" `Quick test_rank_inversion_detected;
    Alcotest.test_case "same-rank double acquisition detected" `Quick test_same_rank_detected;
    Alcotest.test_case "re-entrancy detected" `Quick test_reentrancy_detected;
    Alcotest.test_case "violation leaves no residue" `Quick test_violation_leaves_no_residue;
    Alcotest.test_case "exception releases lock" `Quick test_exception_releases_lock;
    Alcotest.test_case "enforcement off is silent" `Quick test_enforcement_off_is_silent;
    Alcotest.test_case "domain pool under lockdep" `Quick test_domain_pool_under_lockdep;
    Alcotest.test_case "engine smoke under lockdep" `Quick test_engine_under_lockdep;
  ]
