(* Runtime lockdep: Ordered_mutex turns rank inversions, same-rank
   double acquisitions, and re-entrancy into deterministic Violation
   raises when enforcement is on — and costs nothing observable when
   off. The whole tier-1 suite additionally runs under LSM_LOCKDEP=1 in
   CI, so every engine lock path is exercised with checking live. *)

module Om = Lsm_util.Ordered_mutex
module Domain_pool = Lsm_util.Domain_pool
module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Policy = Lsm_compaction.Policy

let with_enforce b f =
  let prev = Om.enabled () in
  Om.set_enforce b;
  Fun.protect ~finally:(fun () -> Om.set_enforce prev) f

let expect_violation what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Ordered_mutex.Violation" what
  | exception Om.Violation _ -> ()

let db_m () = Om.create ~rank:Om.Rank.db ~name:"db.id"
let shard_m () = Om.create ~rank:Om.Rank.block_cache_shard ~name:"block_cache.shard"

let test_clean_ordering () =
  with_enforce true @@ fun () ->
  let locks =
    [
      db_m ();
      Om.create ~rank:Om.Rank.table_cache ~name:"table_cache";
      shard_m ();
      Om.create ~rank:Om.Rank.device ~name:"device";
      Om.create ~rank:Om.Rank.stats ~name:"io_stats";
    ]
  in
  (* Acquire the whole hierarchy in rank order, nested. *)
  let rec nest = function
    | [] ->
      Alcotest.(check int) "all five held" 5 (List.length (Om.held_names ()))
    | l :: tl -> Om.with_lock l (fun () -> nest tl)
  in
  nest locks;
  Alcotest.(check (list string)) "all released" [] (Om.held_names ())

let test_rank_inversion_detected () =
  with_enforce true @@ fun () ->
  let db = db_m () and shard = shard_m () in
  (* The correct direction works... *)
  Om.with_lock db (fun () -> Om.with_lock shard (fun () -> ()));
  (* ...the deliberate inversion — block_cache shard before db — raises. *)
  expect_violation "shard-then-db" (fun () ->
      Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ())))

let test_same_rank_detected () =
  with_enforce true @@ fun () ->
  let a = shard_m () and b = shard_m () in
  expect_violation "two shards at once" (fun () ->
      Om.with_lock a (fun () -> Om.with_lock b (fun () -> ())))

let test_reentrancy_detected () =
  with_enforce true @@ fun () ->
  let m = db_m () in
  expect_violation "re-entrant with_lock" (fun () ->
      Om.with_lock m (fun () -> Om.with_lock m (fun () -> ())))

let test_violation_leaves_no_residue () =
  with_enforce true @@ fun () ->
  let db = db_m () and shard = shard_m () in
  expect_violation "inversion" (fun () ->
      Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ())));
  (* The failed acquisition held nothing: the stack is exactly empty
     and both locks remain usable in the correct order. *)
  Alcotest.(check (list string)) "stack empty after violation" [] (Om.held_names ());
  Om.with_lock db (fun () -> Om.with_lock shard (fun () -> ()))

let test_exception_releases_lock () =
  with_enforce true @@ fun () ->
  let m = db_m () in
  (try Om.with_lock m (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (list string)) "released on raise" [] (Om.held_names ());
  Om.with_lock m (fun () -> ())

let test_enforcement_off_is_silent () =
  (* Pause graph recording: this test's deliberate inversion must not
     leak into a CI-configured LSM_LOCKDEP_GRAPH file as a fake cycle. *)
  let prev_path = Om.Graph.path () in
  Om.Graph.set_path None;
  Fun.protect ~finally:(fun () -> Om.Graph.set_path prev_path)
  @@ fun () ->
  with_enforce false @@ fun () ->
  let db = db_m () and shard = shard_m () in
  (* Inverted and even "re-entrant-looking" sequential use: no raise
     (and no deadlock, since nothing actually nests on the same lock). *)
  Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ()));
  Alcotest.(check bool) "disabled" false (Om.enabled ())

let test_domain_pool_under_lockdep () =
  with_enforce true @@ fun () ->
  let pool = Domain_pool.create ~size:3 in
  let squares = Domain_pool.map_list pool (fun x -> x * x) (List.init 50 Fun.id) in
  Alcotest.(check (list int)) "pool works under lockdep"
    (List.init 50 (fun i -> i * i))
    squares;
  Domain_pool.shutdown pool

(* A real engine smoke test: flushes, parallel subcompactions, fanned
   multi_get and cache churn all run with enforcement live — any lock
   acquired out of rank order anywhere on those paths would raise. *)
let test_engine_under_lockdep () =
  with_enforce true @@ fun () ->
  let dev = Device.in_memory () in
  let config =
    {
      (Config.default) with
      write_buffer_size = 4 * 1024;
      level1_capacity = 16 * 1024;
      target_file_size = 8 * 1024;
      block_size = 1024;
      compaction = Policy.leveled ~size_ratio:4 ();
      compaction_parallelism = 2;
      block_cache_shards = 4;
      max_open_tables = 8;
      wal_enabled = false;
    }
  in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 999 do
    Db.put db ~key:(Printf.sprintf "key-%04d" (i mod 250)) (Printf.sprintf "v%d" i)
  done;
  Db.flush db;
  while Db.compact_once db do () done;
  let keys = List.init 250 (fun i -> Printf.sprintf "key-%04d" i) in
  let hits = Db.multi_get db keys |> List.filter Option.is_some |> List.length in
  Alcotest.(check int) "every key readable" 250 hits;
  Db.close db

let test_unlock_drops_exactly_one () =
  (* Regression: unlock must drop exactly one held entry. Two shard
     locks share a name; with recording on (enforcement off, so the
     same-rank pair is legal) releasing the inner one must leave the
     outer hold tracked — a drop-all-matches unlock would empty the
     stack. *)
  let tmp = Filename.temp_file "lockdep_unlock" ".graph" in
  let prev_path = Om.Graph.path () in
  Fun.protect
    ~finally:(fun () ->
      (* Drop this test's contrived edges before restoring any
         CI-configured recording destination. *)
      Om.Graph.reset_run ();
      Om.Graph.set_path prev_path;
      try Sys.remove tmp with Sys_error _ -> ())
  @@ fun () ->
  Om.Graph.set_path (Some tmp);
  with_enforce false @@ fun () ->
  let a = shard_m () and b = shard_m () in
  Om.lock a;
  Om.lock b;
  Om.unlock b;
  Alcotest.(check (list string)) "outer hold survives" [ "block_cache.shard" ] (Om.held_names ());
  Om.unlock a;
  Alcotest.(check (list string)) "empty after both" [] (Om.held_names ())

let test_graph_cross_run_cycle () =
  (* The recorder's reason to exist: two runs, each acyclic on its own,
     whose merged acquired-before graph has a cycle — the cross-run
     deadlock class single-run enforcement cannot see. *)
  let tmp = Filename.temp_file "lockdep_graph" ".graph" in
  Sys.remove tmp;
  let prev_path = Om.Graph.path () in
  Fun.protect
    ~finally:(fun () ->
      (* The seeded inversion must not reach a CI-configured graph
         file: clear the run table before restoring the real path. *)
      Om.Graph.reset_run ();
      Om.Graph.set_path prev_path;
      try Sys.remove tmp with Sys_error _ -> ())
  @@ fun () ->
  (* Flush edges observed so far in this process to their own file
     before repointing recording at the temp file. *)
  if prev_path <> None then ignore (Om.Graph.merge_to_file ());
  Om.Graph.reset_run ();
  Om.Graph.set_path (Some tmp);
  let db = db_m () and shard = shard_m () in
  (* Run 1: the legal order, enforcement live. *)
  with_enforce true (fun () ->
      Om.with_lock db (fun () -> Om.with_lock shard (fun () -> ())));
  let run1 = Om.Graph.merge_to_file () in
  Alcotest.(check bool) "run 1 records db -> shard" true
    (List.exists
       (fun (e : Om.Graph.edge) -> e.Om.Graph.src = "db.id" && e.dst = "block_cache.shard")
       run1);
  Alcotest.(check bool) "run 1 acyclic" true (Om.Graph.cycles run1 = []);
  (* Run 2: the mirror order with enforcement off — nothing raises, but
     recording is independent of enforcement, so the edge still lands. *)
  Om.Graph.reset_run ();
  with_enforce false (fun () ->
      Om.with_lock shard (fun () -> Om.with_lock db (fun () -> ())));
  ignore (Om.Graph.merge_to_file ());
  let loaded = Om.Graph.load tmp in
  Alcotest.(check bool) "merged file holds both orders" true
    (List.exists
       (fun (e : Om.Graph.edge) -> e.Om.Graph.src = "block_cache.shard" && e.dst = "db.id")
       loaded
    && List.exists
         (fun (e : Om.Graph.edge) -> e.Om.Graph.src = "db.id" && e.dst = "block_cache.shard")
         loaded);
  (match Om.Graph.cycles loaded with
  | [] -> Alcotest.fail "expected a cross-run cycle in the merged graph"
  | cyc :: _ ->
    Alcotest.(check bool) "cycle names both locks" true
      (List.mem "db.id" cyc && List.mem "block_cache.shard" cyc));
  (* `lsm-lint --lockdep-graph` judges the same file: the cycle is a
     failing finding. *)
  let report = Lsm_lint.Lockdep_graph.analyze ~file:tmp ~static_edges:[] in
  Alcotest.(check (list string)) "lint reports the cycle" [ "R11" ]
    (List.map
       (fun (f : Lsm_lint.Finding.t) -> f.Lsm_lint.Finding.rule)
       report.Lsm_lint.Lockdep_graph.g_findings)

let suite =
  [
    Alcotest.test_case "clean rank ordering passes" `Quick test_clean_ordering;
    Alcotest.test_case "rank inversion detected" `Quick test_rank_inversion_detected;
    Alcotest.test_case "same-rank double acquisition detected" `Quick test_same_rank_detected;
    Alcotest.test_case "re-entrancy detected" `Quick test_reentrancy_detected;
    Alcotest.test_case "violation leaves no residue" `Quick test_violation_leaves_no_residue;
    Alcotest.test_case "exception releases lock" `Quick test_exception_releases_lock;
    Alcotest.test_case "enforcement off is silent" `Quick test_enforcement_off_is_silent;
    Alcotest.test_case "domain pool under lockdep" `Quick test_domain_pool_under_lockdep;
    Alcotest.test_case "engine smoke under lockdep" `Quick test_engine_under_lockdep;
    Alcotest.test_case "unlock drops exactly one hold" `Quick test_unlock_drops_exactly_one;
    Alcotest.test_case "graph recorder: cross-run cycle" `Quick test_graph_cross_run_cycle;
  ]
