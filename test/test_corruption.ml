(* Silent-corruption tolerance: bit-rot injection primitives, typed
   errors at the read path, quarantine + health state machine, fail-safe
   read-only mode with [try_resume], the integrity scrubber, doctor
   salvage, and the corruption-sweep harness (the bit-rot analogue of
   the crash sweeps in test_crash.ml). *)

module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Doctor = Lsm_core.Doctor
module Stats = Lsm_core.Stats
module Lsm_error = Lsm_util.Lsm_error
module Histogram = Lsm_util.Histogram
module Harness = Lsm_workload.Corruption_harness
module Crash = Lsm_workload.Crash_harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let popcount b =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go (Char.code b) 0

let write_synced dev name data =
  let w = Device.open_writer dev ~cls:Io_stats.C_misc name in
  Device.append w data;
  Device.sync w;
  Device.close w

(* ------------------------------------------------------------------ *)
(* Injection primitives                                                 *)
(* ------------------------------------------------------------------ *)

let test_plan_corruption_flips_one_bit_per_page () =
  let dev = Device.in_memory ~page_size:64 () in
  let data = String.make 200 'A' in
  write_synced dev "000001.sst" data;
  let hits = Device.plan_corruption dev ~seed:7 ~classes:[ Device.F_sst ] ~pages:2 () in
  check_int "two pages hit" 2 (List.length hits);
  let got = Device.read dev ~cls:Io_stats.C_misc "000001.sst" ~off:0 ~len:200 in
  let flipped = ref 0 in
  String.iteri
    (fun i c ->
      if c <> data.[i] then begin
        incr flipped;
        check_int "exactly one bit differs" 1 (popcount (Char.chr (Char.code c lxor Char.code data.[i])));
        check "hit offset reported" true
          (List.exists (fun (h : Device.corruption_hit) -> h.Device.hit_off = i) hits)
      end)
    got;
  check_int "one byte per page" 2 !flipped

let test_plan_corruption_class_filter () =
  let dev = Device.in_memory () in
  write_synced dev "000001.sst" (String.make 64 's');
  write_synced dev "MANIFEST" (String.make 64 'm');
  write_synced dev "wal-000000.log" (String.make 64 'w');
  write_synced dev "notes.txt" (String.make 64 'o');
  let hits = Device.plan_corruption dev ~seed:3 ~classes:[ Device.F_manifest ] ~pages:1 () in
  check_int "only the manifest hit" 1 (List.length hits);
  List.iter
    (fun (h : Device.corruption_hit) ->
      check "classified" true (h.Device.hit_class = Device.F_manifest);
      check "named" true (h.Device.hit_file = "MANIFEST"))
    hits;
  (* Unsynced bytes are out of bounds: corruption models rot of the
     durable image only (the writer stays open, nothing synced yet). *)
  let dev2 = Device.in_memory () in
  let w = Device.open_writer dev2 ~cls:Io_stats.C_misc "000009.sst" in
  Device.append w (String.make 64 'u');
  check "nothing synced, nothing hit" true
    (Device.plan_corruption dev2 ~seed:1 ~pages:1 () = []);
  Device.close w

let test_plan_corruption_rejects_bad_args () =
  let dev = Device.in_memory () in
  check "pages < 1 rejected" true
    (try
       ignore (Device.plan_corruption dev ~seed:1 ~pages:0 ());
       false
     with Invalid_argument _ -> true)

let test_plan_read_faults_transient () =
  let dev = Device.in_memory () in
  write_synced dev "000001.sst" "hello world";
  Device.plan_read_faults dev 2;
  let attempt () =
    match Device.read dev ~cls:Io_stats.C_misc "000001.sst" ~off:0 ~len:5 with
    | s -> `Ok s
    | exception Lsm_error.Error (Lsm_error.Io_error { retriable; _ }) -> `Fault retriable
  in
  check "first read faults retriable" true (attempt () = `Fault true);
  check "second read faults retriable" true (attempt () = `Fault true);
  check "charges spent, data undamaged" true (attempt () = `Ok "hello");
  check_int "fired count" 2 (Device.read_faults_fired dev)

(* ------------------------------------------------------------------ *)
(* Typed read path, quarantine, health                                  *)
(* ------------------------------------------------------------------ *)

let small_config () =
  { Config.default with Config.write_buffer_size = 4096; wal_sync_every_write = true }

(* A closed store whose keys live in tables (flushed before close). *)
let build_store ?(config = small_config ()) ~n dev =
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(Printf.sprintf "key-%04d" i) (Printf.sprintf "val-%04d-%s" i (String.make 32 'v'))
  done;
  Db.flush db;
  Db.close db

let test_db_reads_ride_out_transient_faults () =
  let dev = Device.in_memory () in
  build_store ~n:200 dev;
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  Device.plan_read_faults dev 3;
  (* The bounded retry absorbs the transient faults; the value arrives. *)
  check "get survives transient faults" true
    (Db.get db "key-0100" <> None);
  check "faults actually fired" true (Device.read_faults_fired dev > 0);
  Db.close db

let test_corrupt_table_quarantined_typed_degraded () =
  let dev = Device.in_memory () in
  build_store ~n:400 dev;
  let hits = Device.plan_corruption dev ~seed:5 ~classes:[ Device.F_sst ] ~pages:1 () in
  check "injection hit" true (hits <> []);
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  check "healthy before reads" true (Db.health db = Db.Healthy);
  (* Walk every key: some read must trip over the rot and raise typed.
     No read may ever return a wrong value. *)
  let typed = ref 0 in
  for i = 0 to 399 do
    let k = Printf.sprintf "key-%04d" i in
    match Db.get db k with
    | Some v -> check "value exact" true (v = Printf.sprintf "val-%04d-%s" i (String.make 32 'v'))
    | None -> Alcotest.fail ("silently missing " ^ k)
    | exception Lsm_error.Error (Lsm_error.Corruption _) -> incr typed
  done;
  check "typed corruption surfaced" true (!typed > 0);
  check "table quarantined" true (Db.quarantined_tables db <> []);
  check "health degraded" true (Db.health db = Db.Degraded);
  (* The failed block was never cached: the same read keeps raising the
     same typed error instead of serving stale cache contents. *)
  let q = List.hd (Db.quarantined_tables db) in
  check "quarantine names the rotten file" true
    (List.exists (fun (h : Device.corruption_hit) -> h.Device.hit_file = q.Db.q_file) hits);
  let stats = Db.stats db in
  check "corruption counted" true (stats.Stats.corruptions_detected > 0);
  check "quarantine counted" true (stats.Stats.tables_quarantined > 0);
  (* Degraded still serves writes (only fail-safe rejects them). *)
  Db.put db ~key:"fresh" "write";
  check "fresh write readable" true (Db.get db "fresh" = Some "write");
  Db.close db

let test_verify_integrity_reports_findings () =
  let dev = Device.in_memory () in
  build_store ~n:300 dev;
  let db = Db.open_db ~config:(small_config ()) ~dev () in
  check "sound store: no findings" true (Db.verify_integrity db = []);
  ignore (Device.plan_corruption dev ~seed:9 ~classes:[ Device.F_sst ] ~pages:1 ());
  let findings = Db.verify_integrity db in
  check "rot found" true (findings <> []);
  check "all findings typed corruption" true
    (List.for_all (function Lsm_error.Corruption _ -> true | _ -> false) findings);
  let stats = Db.stats db in
  check "scrub runs counted" true (stats.Stats.scrub_runs >= 2);
  check "scrub errors counted" true (stats.Stats.scrub_errors > 0);
  check "scrub quarantined the table" true (Db.quarantined_tables db <> []);
  Db.close db

let test_background_scrub () =
  let dev = Device.in_memory () in
  build_store ~n:300 dev;
  let config =
    { (small_config ()) with Config.compaction_backend = Config.Background; scrub_delay = 0. }
  in
  let db = Db.open_db ~config ~dev () in
  ignore (Device.plan_corruption dev ~seed:4 ~classes:[ Device.F_sst ] ~pages:1 ());
  Db.scrub db;
  Db.quiesce db;
  check "background scrub quarantined the rot" true (Db.quarantined_tables db <> []);
  check "scrub never flips fail-safe" true (Db.health db <> Db.Failsafe_read_only);
  let stats = Db.stats db in
  check "scrub run counted" true (stats.Stats.scrub_runs >= 1);
  Db.close db

(* ------------------------------------------------------------------ *)
(* Fail-safe read-only mode                                             *)
(* ------------------------------------------------------------------ *)

let test_bg_failure_enters_failsafe_and_resume () =
  let dev = Device.in_memory () in
  build_store ~n:400 dev;
  let config =
    { (small_config ()) with Config.compaction_backend = Config.Background }
  in
  let db = Db.open_db ~config ~dev () in
  ignore (Device.plan_corruption dev ~seed:6 ~classes:[ Device.F_sst ] ~pages:1 ());
  (* Keep feeding writes until a background flush/compaction trips over
     the rotten table and parks the engine in fail-safe. *)
  let attempts = ref 0 in
  while Db.health db <> Db.Failsafe_read_only && !attempts < 200 do
    incr attempts;
    (* flush may itself re-raise the typed Corruption (inline leg of the
       guard) or a typed Read_only once fail-safe engages — both are the
       disclosed contract, never a silent success. *)
    try
      for i = 0 to 49 do
        Db.put db ~key:(Printf.sprintf "new-%03d-%03d" !attempts i) (String.make 40 'x')
      done;
      Db.flush db;
      Db.quiesce db
    with Lsm_error.Error _ -> ()
  done;
  Db.quiesce db;
  check "fail-safe entered" true (Db.health db = Db.Failsafe_read_only);
  let stats = Db.stats db in
  check "failsafe counted" true (stats.Stats.failsafe_entries > 0);
  (* Reads still work (or disclose damage as typed errors)... *)
  (match Db.get db "key-0000" with
  | Some _ | None -> ()
  | exception Lsm_error.Error (Lsm_error.Corruption _) -> ());
  (* ...writes are rejected with the typed Read_only, not a crash. *)
  check "put rejected" true
    (try
       Db.put db ~key:"rejected" "w";
       false
     with Lsm_error.Error (Lsm_error.Read_only _) -> true);
  check "flush rejected" true
    (try
       Db.flush db;
       false
     with Lsm_error.Error (Lsm_error.Read_only _) -> true);
  (* try_resume clears fail-safe (to Degraded: quarantines remain) and
     writes flow again. *)
  let h = Db.try_resume db in
  check "resumed out of fail-safe" true (h <> Db.Failsafe_read_only);
  check "resume counted" true ((Db.stats db).Stats.resumes > 0);
  Db.put db ~key:"after-resume" "w";
  check "write after resume" true (Db.get db "after-resume" = Some "w");
  Db.close db

(* ------------------------------------------------------------------ *)
(* Proportional backpressure                                            *)
(* ------------------------------------------------------------------ *)

let test_proportional_slowdown_visible_in_stats () =
  let dev = Device.in_memory () in
  let config =
    {
      (small_config ()) with
      Config.compaction_backend = Config.Background;
      (* Byte-denominated: one 4 KiB buffer of debt already crosses the
         slowdown line, and the stop line is out of reach, so every
         rotation exercises the proportional ramp. *)
      write_slowdown_trigger = 4096;
      write_stop_trigger = 1 lsl 20;
    }
  in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 999 do
    Db.put db ~key:(Printf.sprintf "key-%04d" i) (String.make 48 'x')
  done;
  Db.quiesce db;
  let stats = Db.stats db in
  check "slowdowns triggered" true (stats.Stats.write_slowdowns > 0);
  let h = stats.Stats.slowdown_delay_ns in
  check "delays recorded" true (Histogram.count h > 0);
  (* The ramp is proportional: every recorded delay sits inside the
     [50µs, 1ms] band, not at a single fixed point. *)
  check "min >= 50us" true (Histogram.min_value h >= 50_000);
  check "max <= 1ms (log-bucketed)" true (Histogram.max_value h <= 2_000_000);
  Db.close db

(* ------------------------------------------------------------------ *)
(* Doctor salvage                                                       *)
(* ------------------------------------------------------------------ *)

let test_doctor_salvages_unhit_keys () =
  let dev = Device.in_memory () in
  let config =
    { Config.default with Config.write_buffer_size = 1 lsl 15; wal_sync_every_write = true }
  in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "val-%04d-%s" i (String.make 48 'v') in
  let n = 600 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  let hits = Device.plan_corruption dev ~seed:21 ~classes:[ Device.F_sst ] ~pages:1 () in
  check "injection hit" true (hits <> []);
  check "verify finds the rot" true (Doctor.verify dev <> []);
  let report = Doctor.repair dev in
  let db2 = Db.open_db ~config ~dev () in
  let lost k =
    List.exists
      (fun (tr : Doctor.table_report) ->
        List.exists
          (fun (lo, hi) -> (lo = "" && hi = "") || (lo <= k && k <= hi))
          tr.Doctor.tr_lost_ranges)
      report.Doctor.tables
  in
  let salvaged = ref 0 in
  for i = 0 to n - 1 do
    match Db.get db2 (key i) with
    | Some v ->
      incr salvaged;
      check "salvaged value exact" true (v = value i)
    | None -> check "loss disclosed" true (lost (key i))
  done;
  check "salvage kept most keys" true (!salvaged > n / 2);
  Db.close db2

(* Two rot sites in one log: the per-block resync must recover the
   batches on every side — before, between, and after the damage — and
   disclose exactly the two skipped ranges. The classic scan would stop
   at the first bad frame and silently drop everything after it. *)
let test_wal_salvage_two_rot_sites () =
  let module Wal = Lsm_storage.Wal in
  let module Entry = Lsm_record.Entry in
  let dev = Device.in_memory () in
  let batch i =
    [ { Entry.key = Printf.sprintf "batch-%d" i; seqno = i; kind = Entry.Put;
        value = String.make 48 (Char.chr (Char.code 'a' + i)) } ]
  in
  let wal = Wal.create dev ~name:"wal-000001.log" in
  let bounds =
    List.map
      (fun i ->
        let start = Wal.size wal in
        Wal.append wal (batch i);
        (i, start, Wal.size wal))
      [ 1; 2; 3; 4; 5 ]
  in
  Wal.close wal;
  (* One flipped bit inside the payloads of batches 2 and 4. *)
  let flip_at off =
    let b = Device.read dev ~cls:Io_stats.C_misc "wal-000001.log" ~off ~len:1 in
    Device.patch dev ~cls:Io_stats.C_misc "wal-000001.log" ~off
      (String.make 1 (Char.chr (Char.code b.[0] lxor 1)))
  in
  let frame i = let _, s, e = List.find (fun (j, _, _) -> j = i) bounds in (s, e) in
  let f2s, _ = frame 2 and f4s, _ = frame 4 in
  flip_at (f2s + 9);
  flip_at (f4s + 9);
  let got = ref [] in
  let n, gaps =
    Wal.salvage dev ~name:"wal-000001.log" (fun es ->
        got := !got @ List.map (fun e -> e.Entry.key) es)
  in
  check_int "batches on both sides of both gaps recovered" 3 n;
  Alcotest.(check (list string)) "exactly batches 1, 3, 5 survive"
    [ "batch-1"; "batch-3"; "batch-5" ] !got;
  check_int "both rot sites disclosed" 2 (List.length gaps);
  List.iter
    (fun off ->
      check "flipped byte lies inside a disclosed gap" true
        (List.exists (fun (s, e) -> s <= off && off < e) gaps))
    [ f2s + 9; f4s + 9 ]

(* Manifest-only rot with intact tables: [repair_manifest] re-derives
   the version from the surviving footers and the reopened store serves
   the exact final state, losing nothing. *)
let test_repair_manifest_rebuilds_exact_state () =
  let dev = Device.in_memory () in
  let config =
    { Config.default with Config.write_buffer_size = 1 lsl 14; wal_sync_every_write = true }
  in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "value-%04d-%s" i (String.make 48 'v') in
  let n = 600 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  let hits = Device.plan_corruption dev ~seed:9 ~classes:[ Device.F_manifest ] ~pages:1 () in
  check "manifest was hit" true (hits <> []);
  let tables, findings = Doctor.repair_manifest dev in
  check "rebuild referenced the surviving tables" true (tables > 0);
  Alcotest.(check (list string)) "every footer was openable" []
    (List.map Lsm_error.to_string findings);
  let db2 = Db.open_db ~config ~dev () in
  let got = Db.scan db2 ~lo:"" ~hi:None () in
  check_int "exact key count back" n (List.length got);
  List.iteri
    (fun i (k, v) ->
      if k <> key i || v <> value i then
        Alcotest.fail (Printf.sprintf "wrong data for %s after rebuild" k))
    got;
  Db.close db2

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)
(* ------------------------------------------------------------------ *)

let test_corruption_sweep () =
  let ops = Crash.gen_ops ~seed:42 ~count:150 in
  let r = Harness.sweep ~pages:[ 1; 2; 4 ] ~seeds:[ 11 ] ~ops () in
  check_int "all classes times all page counts" 9 r.Harness.runs;
  check "bits actually flipped" true (r.Harness.hits >= r.Harness.runs);
  Alcotest.(check (list string)) "corruption contract holds" [] r.Harness.failures

let suite =
  [
    Alcotest.test_case "plan_corruption: one bit per page" `Quick
      test_plan_corruption_flips_one_bit_per_page;
    Alcotest.test_case "plan_corruption: class filter + synced only" `Quick
      test_plan_corruption_class_filter;
    Alcotest.test_case "plan_corruption: bad args" `Quick test_plan_corruption_rejects_bad_args;
    Alcotest.test_case "plan_read_faults: transient + bounded" `Quick
      test_plan_read_faults_transient;
    Alcotest.test_case "db reads ride out transient faults" `Quick
      test_db_reads_ride_out_transient_faults;
    Alcotest.test_case "corrupt table: typed, quarantined, degraded" `Quick
      test_corrupt_table_quarantined_typed_degraded;
    Alcotest.test_case "verify_integrity reports findings" `Quick
      test_verify_integrity_reports_findings;
    Alcotest.test_case "background scrub quarantines rot" `Quick test_background_scrub;
    Alcotest.test_case "bg failure -> fail-safe -> resume" `Quick
      test_bg_failure_enters_failsafe_and_resume;
    Alcotest.test_case "proportional slowdown in stats" `Quick
      test_proportional_slowdown_visible_in_stats;
    Alcotest.test_case "doctor salvages un-hit keys" `Quick test_doctor_salvages_unhit_keys;
    Alcotest.test_case "wal salvage: two rot sites, both sides kept" `Quick
      test_wal_salvage_two_rot_sites;
    Alcotest.test_case "repair_manifest rebuilds exact state" `Quick
      test_repair_manifest_rebuilds_exact_state;
    Alcotest.test_case "corruption sweep" `Quick test_corruption_sweep;
  ]
