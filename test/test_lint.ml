(* lsm-lint behaves as specified on the checked-in fixture snippets:
   each rule R1–R8 has a failing and a passing fixture, suppressions
   need a reason, and the real lib/ tree is clean. Fixtures are parsed,
   never compiled, so they can use raw Mutex / Obj.magic freely. *)

module Lint = Lsm_lint.Lint

let fixture dir = Filename.concat "lint_fixtures" dir

let lint ~rules dirs = Lint.lint_paths ~rules (List.map fixture dirs)

let rules_of findings = List.map (fun (f : Lint.finding) -> f.Lint.rule) findings

let check_rules = Alcotest.(check (list string))

let check_flagged rule ~bad ~ok ~expect () =
  let findings = lint ~rules:[ rule ] [ bad ] in
  check_rules
    (Printf.sprintf "%s flags %s" rule bad)
    (List.init expect (fun _ -> rule))
    (rules_of findings);
  check_rules (Printf.sprintf "%s passes %s" rule ok) [] (rules_of (lint ~rules:[ rule ] [ ok ]))

let test_r1 = check_flagged "R1" ~bad:"r1_bad" ~ok:"r1_ok" ~expect:2
let test_r2 = check_flagged "R2" ~bad:"r2_bad" ~ok:"r2_ok" ~expect:2
let test_r3 = check_flagged "R3" ~bad:"r3_bad" ~ok:"r3_ok" ~expect:1
let test_r4 = check_flagged "R4" ~bad:"r4_bad" ~ok:"r4_ok" ~expect:4
let test_r5 = check_flagged "R5" ~bad:"r5_bad" ~ok:"r5_ok" ~expect:2
let test_r6 = check_flagged "R6" ~bad:"r6_bad" ~ok:"r6_ok" ~expect:2
let test_r7 = check_flagged "R7" ~bad:"r7_bad" ~ok:"r7_ok" ~expect:3
let test_r8 = check_flagged "R8" ~bad:"r8_bad" ~ok:"r8_ok" ~expect:2

let test_r2_only_in_cache_modules () =
  (* The same I/O-under-lock shape in a non-cache module is not R2's
     business: the rule is about the fan-out hot-path locks. *)
  let findings =
    Lint.lint_paths ~rules:[ "R2" ] [ Filename.concat (fixture "r1_bad") "raw_mutex.ml" ]
  in
  check_rules "non-cache module ignored" [] (rules_of findings)

let test_finding_positions () =
  let findings = lint ~rules:[ "R1" ] [ "r1_bad" ] in
  Alcotest.(check (list int)) "R1 lines" [ 7; 9 ] (List.map (fun (f : Lint.finding) -> f.Lint.line) findings)

let test_suppression_with_reason () =
  check_rules "explained suppression silences R1" []
    (rules_of (lint ~rules:[ "R1" ] [ "suppress_ok" ]))

let test_suppression_without_reason () =
  (* Reasonless: the suppression is rejected (R0) AND the underlying
     finding survives. *)
  check_rules "reasonless suppression rejected" [ "R0"; "R1" ]
    (rules_of (lint ~rules:[ "R1" ] [ "suppress_bad" ]))

let test_rule_filter () =
  (* r4_bad also contains no R1 material; an R1-only run over it is clean. *)
  check_rules "rule filter" [] (rules_of (lint ~rules:[ "R1" ] [ "r4_bad" ]))

let test_repo_lib_clean () =
  (* The real tree, all rules: this is exactly what the CI lint job
     gates on. Under `dune runtest` the cwd is _build/default/test, so
     the built lib/ sources sit one level up. *)
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then
    check_rules "lib/ lint-clean" [] (rules_of (Lint.lint_paths [ "../lib" ]))

let suite =
  [
    Alcotest.test_case "R1: raw mutex fixtures" `Quick test_r1;
    Alcotest.test_case "R2: I/O under lock fixtures" `Quick test_r2;
    Alcotest.test_case "R3: missing mli fixtures" `Quick test_r3;
    Alcotest.test_case "R4: shared state fixtures" `Quick test_r4;
    Alcotest.test_case "R5: atomic pair fixtures" `Quick test_r5;
    Alcotest.test_case "R6: raw spawn fixtures" `Quick test_r6;
    Alcotest.test_case "R7: untyped failwith fixtures" `Quick test_r7;
    Alcotest.test_case "R8: unlooped condition wait fixtures" `Quick test_r8;
    Alcotest.test_case "R2 scoped to cache modules" `Quick test_r2_only_in_cache_modules;
    Alcotest.test_case "findings carry line numbers" `Quick test_finding_positions;
    Alcotest.test_case "suppression with reason" `Quick test_suppression_with_reason;
    Alcotest.test_case "suppression without reason" `Quick test_suppression_without_reason;
    Alcotest.test_case "rule filtering" `Quick test_rule_filter;
    Alcotest.test_case "repo lib/ is clean" `Quick test_repo_lib_clean;
  ]
