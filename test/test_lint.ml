(* lsm-lint behaves as specified on the checked-in fixture snippets.

   Parse frontend (R1–R8): each rule has a failing and a passing
   fixture, suppressions need a reason, stale suppressions are
   reported, and the real lib/ tree is clean. Those fixtures are
   parsed, never compiled, so they can use raw Mutex / Obj.magic
   freely.

   Typed frontend (R9–R10): the fixtures under lint_fixtures/typed/
   are real dune libraries (listed in this test's dependencies so
   their .cmt output exists before the test runs); the passes load the
   .cmt files exactly as `lsm-lint --typed` does. The capstone test
   re-derives the full lock hierarchy from the built lib/ tree and
   checks it against the Rank table. *)

module Driver = Lsm_lint.Driver
module Finding = Lsm_lint.Finding
module Typed_rules = Lsm_lint.Typed_rules
module Lock_summary = Lsm_lint.Lock_summary

let fixture dir = Filename.concat "lint_fixtures" dir

let lint ~rules dirs = Driver.lint_paths ~rules (List.map fixture dirs)

let rules_of findings = List.map (fun (f : Finding.t) -> f.Finding.rule) findings

let check_rules = Alcotest.(check (list string))

let check_flagged rule ~bad ~ok ~expect () =
  let findings = lint ~rules:[ rule ] [ bad ] in
  check_rules
    (Printf.sprintf "%s flags %s" rule bad)
    (List.init expect (fun _ -> rule))
    (rules_of findings);
  check_rules (Printf.sprintf "%s passes %s" rule ok) [] (rules_of (lint ~rules:[ rule ] [ ok ]))

let test_r1 = check_flagged "R1" ~bad:"r1_bad" ~ok:"r1_ok" ~expect:2
let test_r2 = check_flagged "R2" ~bad:"r2_bad" ~ok:"r2_ok" ~expect:2
let test_r3 = check_flagged "R3" ~bad:"r3_bad" ~ok:"r3_ok" ~expect:1
let test_r4 = check_flagged "R4" ~bad:"r4_bad" ~ok:"r4_ok" ~expect:4
let test_r5 = check_flagged "R5" ~bad:"r5_bad" ~ok:"r5_ok" ~expect:2
let test_r6 = check_flagged "R6" ~bad:"r6_bad" ~ok:"r6_ok" ~expect:2
let test_r7 = check_flagged "R7" ~bad:"r7_bad" ~ok:"r7_ok" ~expect:3
let test_r8 = check_flagged "R8" ~bad:"r8_bad" ~ok:"r8_ok" ~expect:2

(* r12_ok also contains other_module.ml carrying the same bad idioms
   under a non-hot file name: a clean pass proves both the blessed
   arena idioms and the file-name scoping. *)
let test_r12 = check_flagged "R12" ~bad:"r12_bad" ~ok:"r12_ok" ~expect:4

let test_r2_only_in_cache_modules () =
  (* The same I/O-under-lock shape in a non-cache module is not R2's
     business: the rule is about the fan-out hot-path locks. *)
  let findings =
    Driver.lint_paths ~rules:[ "R2" ] [ Filename.concat (fixture "r1_bad") "raw_mutex.ml" ]
  in
  check_rules "non-cache module ignored" [] (rules_of findings)

let test_finding_positions () =
  let findings = lint ~rules:[ "R1" ] [ "r1_bad" ] in
  Alcotest.(check (list int))
    "R1 lines" [ 7; 9 ]
    (List.map (fun (f : Finding.t) -> f.Finding.line) findings)

let test_suppression_with_reason () =
  check_rules "explained suppression silences R1" []
    (rules_of (lint ~rules:[ "R1" ] [ "suppress_ok" ]))

let test_suppression_without_reason () =
  (* Reasonless: the suppression is rejected (R0) AND the underlying
     finding survives. *)
  check_rules "reasonless suppression rejected" [ "R0"; "R1" ]
    (rules_of (lint ~rules:[ "R1" ] [ "suppress_bad" ]))

let test_unused_suppression () =
  (* The fixture allows R7 but raises nothing: with R7 active the
     suppression demonstrably suppressed nothing, so it is reported. *)
  check_rules "stale suppression reported" [ "R0" ]
    (rules_of (lint ~rules:[ "R7" ] [ "suppress_unused" ]));
  (* With R7 inactive staleness cannot be judged — stay silent. *)
  check_rules "unjudgeable suppression kept quiet" []
    (rules_of (lint ~rules:[ "R1" ] [ "suppress_unused" ]))

let test_rule_filter () =
  (* r4_bad also contains no R1 material; an R1-only run over it is clean. *)
  check_rules "rule filter" [] (rules_of (lint ~rules:[ "R1" ] [ "r4_bad" ]))

let test_json_output () =
  let f =
    Finding.v ~file:"lib/x.ml" ~line:3 ~rule:"R9" ~chain:[ "A.f"; "B.g" ]
      "say \"hi\""
  in
  Alcotest.(check string)
    "finding serializes"
    {|{"file":"lib/x.ml","line":3,"rule":"R9","message":"say \"hi\"","chain":["A.f","B.g"]}|}
    (Finding.to_json f);
  Alcotest.(check bool)
    "list is a JSON array" true
    (let s = Finding.list_to_json [ f; f ] in
     String.length s > 2 && s.[0] = '[' && s.[String.length s - 1] = ']')

let test_repo_lib_clean () =
  (* The real tree, all parse rules: this is exactly what the CI lint
     job gates on. Under `dune runtest` the cwd is _build/default/test,
     so the built lib/ sources sit one level up. *)
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then
    check_rules "lib/ lint-clean" []
      (rules_of (Driver.lint_paths ~rules:Lsm_lint.Parse_rules.all_rules [ "../lib" ]))

(* ---------------- typed frontend ---------------- *)

let typed ?rules dir = Driver.typed_analysis ?rules [ fixture (Filename.concat "typed" dir) ]

let base_of (f : Finding.t) = Filename.basename f.Finding.file

let test_r9_inversion_reported () =
  let t = typed ~rules:[ "R9" ] "r9_bad" in
  let fs = Typed_rules.findings t in
  check_rules "one inversion" [ "R9" ] (rules_of fs);
  let f = List.hd fs in
  (* Anchored at the descending acquisition itself (Engine's lock);
     the chain carries the outer context. *)
  Alcotest.(check string) "reported at the acquiring site" "engine.ml" (base_of f);
  let chain = String.concat " -> " f.Finding.chain in
  let has needle =
    let nh = String.length chain and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub chain i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chain crosses into Engine.kick" true (has "Cache.refill" && has "Engine.kick")

let test_r9_ascending_clean () =
  let t = typed ~rules:[ "R9" ] "r9_ok" in
  check_rules "ascending ranks pass" [] (rules_of (Typed_rules.findings t));
  (* ...but the acquired-before edge itself is still derived. *)
  Alcotest.(check int) "edge recorded" 1 (List.length t.Typed_rules.lock_order.Lock_summary.edges)

let test_r10_escapes_reported () =
  let t = typed ~rules:[ "R10" ] "r10_bad" in
  let fs = Typed_rules.findings t in
  check_rules "three escapes" [ "R10"; "R10"; "R10" ] (rules_of fs);
  List.iter (fun f -> Alcotest.(check string) "all in leak.ml" "leak.ml" (base_of f)) fs

let test_r10_contained_clean () =
  let t = typed ~rules:[ "R10" ] "r10_ok" in
  check_rules "pin-scoped uses pass" [] (rules_of (Typed_rules.findings t))

let expected_classes =
  [
    ("db.buffers", 8);
    ("db.snapshots", 9);
    ("db.id", 10);
    ("version.pins", 12);
    ("table_cache", 20);
    ("block_cache.shard", 30);
    ("device", 40);
    ("io_stats", 50);
    ("scheduler", 55);
    ("scheduler.lane", 55);
    ("domain_pool.queue", 60);
    ("domain_pool.future", 70);
  ]

let test_typed_lib_clean_and_order_derived () =
  (* The acceptance bar from the issue: R9 over the built lib/ tree
     independently re-derives the Rank ordering of ordered_mutex.ml
     with zero findings, and every acquired-before edge it finds
     ascends in rank. *)
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let t = Driver.typed_analysis [ "../lib" ] in
    check_rules "lib/ typed-clean" [] (rules_of (Typed_rules.findings t));
    let order = t.Typed_rules.lock_order in
    Alcotest.(check (list (pair string int)))
      "derived classes match the Rank table" expected_classes
      (List.map
         (fun (name, rank) -> (name, Option.value rank ~default:(-1)))
         order.Lock_summary.classes);
    Alcotest.(check bool) "edges exist" true (order.Lock_summary.edges <> []);
    List.iter
      (fun (e : Lock_summary.edge) ->
        match (e.Lock_summary.e_src_rank, e.Lock_summary.e_dst_rank) with
        | Some sr, Some dr ->
          if sr > dr then
            Alcotest.failf "descending edge %s (%d) -> %s (%d)" e.Lock_summary.e_src sr
              e.Lock_summary.e_dst dr
        | _ -> Alcotest.failf "unranked edge %s -> %s" e.Lock_summary.e_src e.Lock_summary.e_dst)
      order.Lock_summary.edges;
    Alcotest.(check bool)
      "lane -> pool queue edge witnessed" true
      (List.exists
         (fun (e : Lock_summary.edge) ->
           e.Lock_summary.e_src = "scheduler.lane" && e.Lock_summary.e_dst = "domain_pool.queue")
         order.Lock_summary.edges)
  end

let suite =
  [
    Alcotest.test_case "R1: raw mutex fixtures" `Quick test_r1;
    Alcotest.test_case "R2: I/O under lock fixtures" `Quick test_r2;
    Alcotest.test_case "R3: missing mli fixtures" `Quick test_r3;
    Alcotest.test_case "R4: shared state fixtures" `Quick test_r4;
    Alcotest.test_case "R5: atomic pair fixtures" `Quick test_r5;
    Alcotest.test_case "R6: raw spawn fixtures" `Quick test_r6;
    Alcotest.test_case "R7: untyped failwith fixtures" `Quick test_r7;
    Alcotest.test_case "R8: unlooped condition wait fixtures" `Quick test_r8;
    Alcotest.test_case "R12: allocation-heavy idiom fixtures" `Quick test_r12;
    Alcotest.test_case "R2 scoped to cache modules" `Quick test_r2_only_in_cache_modules;
    Alcotest.test_case "findings carry line numbers" `Quick test_finding_positions;
    Alcotest.test_case "suppression with reason" `Quick test_suppression_with_reason;
    Alcotest.test_case "suppression without reason" `Quick test_suppression_without_reason;
    Alcotest.test_case "unused suppression" `Quick test_unused_suppression;
    Alcotest.test_case "rule filtering" `Quick test_rule_filter;
    Alcotest.test_case "JSON output" `Quick test_json_output;
    Alcotest.test_case "repo lib/ is clean" `Quick test_repo_lib_clean;
    Alcotest.test_case "R9: seeded inversion fixture" `Quick test_r9_inversion_reported;
    Alcotest.test_case "R9: ascending fixture clean" `Quick test_r9_ascending_clean;
    Alcotest.test_case "R10: seeded escape fixture" `Quick test_r10_escapes_reported;
    Alcotest.test_case "R10: pin-scoped fixture clean" `Quick test_r10_contained_clean;
    Alcotest.test_case "R9 derives the Rank table from lib/" `Quick test_typed_lib_clean_and_order_derived;
  ]
