let () =
  Alcotest.run "ocaml-lsm"
    [
      ("util", Test_util.suite);
      ("record", Test_record.suite);
      ("storage", Test_storage.suite);
      ("memtable", Test_memtable.suite);
      ("filter", Test_filter.suite);
      ("sstable", Test_sstable.suite);
      ("compaction", Test_compaction.suite);
      ("core", Test_core.suite);
      ("cost", Test_cost.suite);
      ("workload", Test_workload.suite);
      ("kvsep", Test_kvsep.suite);
      ("frag", Test_frag.suite);
      ("internals", Test_internals.suite);
      ("extensions", Test_extensions.suite);
      ("more", Test_more.suite);
      ("parallel", Test_parallel.suite);
      ("scheduler", Test_scheduler.suite);
      ("crash", Test_crash.suite);
      ("corruption", Test_corruption.suite);
      ("ecc", Test_ecc.suite);
      ("lint", Test_lint.suite);
      ("lockdep", Test_lockdep.suite);
      ("races", Test_races.suite);
      ("server", Test_server.suite);
    ]
