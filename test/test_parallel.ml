(* Tests for the parallelism layer: the domain pool, the sharded block
   cache, the bounded table cache, multi_get fan-out, and — the load-
   bearing one — determinism: a database compacted by parallel
   subcompactions must hold byte-for-byte the same logical state (levels,
   entries, seqnos, kinds, values) as one compacted serially. *)

module Domain_pool = Lsm_util.Domain_pool
module Block_cache = Lsm_storage.Block_cache
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Table_cache = Lsm_sstable.Table_cache
module Sstable = Lsm_sstable.Sstable
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Stats = Lsm_core.Stats
module Policy = Lsm_compaction.Policy
module Rng = Lsm_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- domain pool ---------- *)

let test_pool_submit_await () =
  let pool = Domain_pool.create ~size:3 in
  let futs = List.init 20 (fun i -> Domain_pool.submit pool (fun () -> i * i)) in
  List.iteri (fun i f -> check_int "square" (i * i) (Domain_pool.await f)) futs;
  Domain_pool.shutdown pool

let test_pool_inline () =
  let pool = Domain_pool.create ~size:0 in
  check_int "inline size" 0 (Domain_pool.size pool);
  let f = Domain_pool.submit pool (fun () -> 41 + 1) in
  check_int "inline result" 42 (Domain_pool.await f);
  Domain_pool.shutdown pool

let test_pool_map_list_order () =
  let pool = Domain_pool.create ~size:4 in
  let xs = List.init 100 Fun.id in
  let ys = Domain_pool.map_list pool (fun x -> 2 * x) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> 2 * x) xs) ys;
  Domain_pool.shutdown pool

exception Boom

let test_pool_exception_propagates () =
  let pool = Domain_pool.create ~size:2 in
  let f = Domain_pool.submit pool (fun () -> raise Boom) in
  Alcotest.check_raises "reraised at await" Boom (fun () -> ignore (Domain_pool.await f));
  (* pool survives a failed task *)
  check_int "still works" 7 (Domain_pool.await (Domain_pool.submit pool (fun () -> 7)));
  Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      ignore (Domain_pool.submit pool (fun () -> 0)))

let test_pool_shutdown_drains () =
  let pool = Domain_pool.create ~size:2 in
  let counter = Atomic.make 0 in
  let futs =
    List.init 50 (fun _ -> Domain_pool.submit pool (fun () -> Atomic.incr counter))
  in
  Domain_pool.shutdown pool;
  check_int "all queued tasks ran" 50 (Atomic.get counter);
  List.iter Domain_pool.await futs;
  Domain_pool.shutdown pool (* idempotent *)

(* ---------- sharded block cache ---------- *)

let test_sharded_cache_basics () =
  let c = Block_cache.create ~shards:4 ~capacity:4000 () in
  check_int "shards" 4 (Block_cache.shard_count c);
  check_int "capacity split sums back" 4000 (Block_cache.capacity c);
  for i = 0 to 99 do
    Block_cache.insert c ~file:"f" ~off:(i * 10) ~bytes:10 (String.make 10 'x')
  done;
  check_int "all fit" 1000 (Block_cache.used_bytes c);
  check_int "block count" 100 (Block_cache.block_count c);
  for i = 0 to 99 do
    match Block_cache.find c ~file:"f" ~off:(i * 10) with
    | Some d -> check_int "len" 10 (String.length d)
    | None -> Alcotest.fail "inserted block missing"
  done;
  check_int "hits aggregate" 100 (Block_cache.hits c);
  ignore (Block_cache.find c ~file:"f" ~off:99999);
  check_int "misses aggregate" 1 (Block_cache.misses c);
  check_int "evict_file drops from every shard" 100 (Block_cache.evict_file c "f");
  check_int "empty after evict" 0 (Block_cache.used_bytes c)

let test_sharded_cache_eviction_budget () =
  let c = Block_cache.create ~shards:4 ~capacity:400 () in
  (* Overfill: every shard must stay within its slice of the budget. *)
  for i = 0 to 199 do
    Block_cache.insert c ~file:"f" ~off:i ~bytes:10 (String.make 10 'y')
  done;
  check_bool "bounded" true (Block_cache.used_bytes c <= 400);
  check_bool "evicted something" true (Block_cache.evictions c > 0);
  Block_cache.set_capacity c 80;
  check_bool "shrunk" true (Block_cache.used_bytes c <= 80)

let test_sharded_cache_concurrent () =
  let c = Block_cache.create ~shards:4 ~capacity:(1 lsl 16) () in
  let pool = Domain_pool.create ~size:4 in
  let loads = Atomic.make 0 in
  let worker w =
    for i = 0 to 999 do
      let off = (w * 31 + i) mod 256 in
      let d =
        Block_cache.get_or_load c ~file:"shared" ~off (fun () ->
            Atomic.incr loads;
            (Printf.sprintf "%04d" off, 4))
      in
      if int_of_string d <> off then failwith "corrupt cache read"
    done
  in
  ignore (Domain_pool.map_list pool worker [ 0; 1; 2; 3 ]);
  Domain_pool.shutdown pool;
  check_bool "served mostly from cache" true (Atomic.get loads < 4 * 1000);
  check_int "lookups accounted" 4000 (Block_cache.hits c + Block_cache.misses c)

(* ---------- bounded table cache ---------- *)

let build_table dev cmp ~name n =
  let entries =
    Array.init n (fun i ->
        Entry.put ~key:(Printf.sprintf "%s-%04d" name i) ~seqno:(i + 1) "v")
  in
  ignore
    (Sstable.build ~cmp ~dev ~cls:Io_stats.C_flush ~name ~created_at:0
       (Iter.of_sorted_array cmp entries))

let test_table_cache_bound () =
  let cmp = Lsm_util.Comparator.bytewise in
  let dev = Device.in_memory () in
  let cache = Block_cache.create ~capacity:(1 lsl 18) () in
  let tc = Table_cache.create ~capacity:4 ~cmp ~dev ~cache () in
  let names = List.init 10 (fun i -> Printf.sprintf "t%02d.sst" i) in
  List.iter (fun n -> build_table dev cmp ~name:n 10) names;
  List.iter (fun n -> ignore (Table_cache.get tc n)) names;
  check_int "bounded open readers" 4 (Table_cache.open_count tc);
  check_int "evictions" 6 (Table_cache.evictions tc);
  check_int "total opens" 10 (Table_cache.total_opens tc);
  (* An evicted reader reopens transparently, evicting the current LRU. *)
  let r = Table_cache.get tc "t00.sst" in
  check_int "reopen counts" 11 (Table_cache.total_opens tc);
  check_int "still bounded" 4 (Table_cache.open_count tc);
  check_bool "reader works" true
    (Sstable.get r ~cls:Io_stats.C_user_read "t00.sst-0003" <> None);
  (* A recently-used reader is a hit, not a reopen. *)
  ignore (Table_cache.get tc "t00.sst");
  check_int "MRU hit" 11 (Table_cache.total_opens tc);
  Table_cache.set_capacity tc 2;
  check_int "shrink applies" 2 (Table_cache.open_count tc)

(* ---------- engine: determinism of parallel subcompactions ---------- *)

let small_config ~parallelism =
  {
    (Config.default) with
    write_buffer_size = 8 * 1024;
    level1_capacity = 32 * 1024;
    target_file_size = 16 * 1024;
    block_size = 1024;
    compaction = Policy.leveled ~size_ratio:4 ();
    compaction_parallelism = parallelism;
    block_cache_shards = (if parallelism > 1 then 4 else 1);
    wal_enabled = false;
  }

(* A fixed mixed workload: skewed updates, point deletes, one range
   delete, interleaved flushes. Entirely deterministic from [seed]. *)
let run_workload db ~seed ~ops =
  let rng = Rng.create seed in
  for i = 1 to ops do
    let k = Rng.int rng 2000 in
    let key = Printf.sprintf "key%06d" k in
    (match Rng.int rng 10 with
    | 0 -> Db.delete db key
    | 1 ->
      (* Single-delete is only well-defined over a key put exactly once
         (its outcome over re-put keys depends on compaction timing, in
         RocksDB too), so give each one a fresh key. *)
      let sk = Printf.sprintf "sd%06d" i in
      Db.put db ~key:sk (Printf.sprintf "sval-%06d" i);
      Db.single_delete db sk
    | _ -> Db.put db ~key (Printf.sprintf "val-%06d-%08d" k (Rng.int rng 1_000_000)));
    if i = ops / 2 then Db.range_delete db ~lo:"key000500" ~hi:"key000600"
  done;
  Db.flush db

let dump_strings db =
  List.map
    (fun (level, (e : Entry.t)) ->
      Printf.sprintf "L%d %s #%d %s %s" level e.key e.seqno
        (Entry.kind_to_string e.kind)
        (String.escaped e.value))
    (Db.dump_entries db)

let test_parallel_determinism () =
  let mk parallelism =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config:(small_config ~parallelism) ~dev () in
    run_workload db ~seed:0xC0FFEE ~ops:6000;
    db
  in
  let serial = mk 1 and parallel = mk 4 in
  check_bool "parallel path actually ran subcompactions" true
    ((Db.stats parallel).Stats.subcompactions > (Db.stats parallel).Stats.compactions);
  check_int "same seqno" (Db.last_seqno serial) (Db.last_seqno parallel);
  (* Logical state: full scans agree... *)
  let s1 = Db.scan serial ~lo:"" ~hi:None () and s2 = Db.scan parallel ~lo:"" ~hi:None () in
  Alcotest.(check (list (pair string string))) "scans identical" s1 s2;
  (* ...and so does every point lookup, including deleted keys. *)
  for k = 0 to 1999 do
    let key = Printf.sprintf "key%06d" k in
    Alcotest.(check (option string)) key (Db.get serial key) (Db.get parallel key)
  done;
  (* Physical-logical state: after an identical final merge, the trees
     hold entry-for-entry identical data (keys, seqnos, kinds, values) —
     the parallel path's partitioned writes concatenate to exactly the
     serial output stream. *)
  Db.major_compact serial;
  Db.major_compact parallel;
  Alcotest.(check (list string)) "post-major-compact dumps identical"
    (dump_strings serial) (dump_strings parallel);
  (match Db.check_invariants parallel with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Db.close serial;
  Db.close parallel

(* Running the same parallel config twice must be bit-reproducible. *)
let test_parallel_self_determinism () =
  let mk () =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config:(small_config ~parallelism:3) ~dev () in
    run_workload db ~seed:99 ~ops:4000;
    db
  in
  let a = mk () and b = mk () in
  Alcotest.(check (list string)) "identical dumps across runs" (dump_strings a)
    (dump_strings b);
  Db.close a;
  Db.close b

(* ---------- multi_get ---------- *)

let test_multi_get_matches_get () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ~parallelism:4) ~dev () in
  run_workload db ~seed:7 ~ops:5000;
  let keys =
    List.init 500 (fun i ->
        if i mod 5 = 4 then Printf.sprintf "missing%04d" i
        else Printf.sprintf "key%06d" (i * 4))
  in
  let expected = List.map (fun k -> Db.get db k) keys in
  let gets_before = (Db.stats db).Stats.user_gets in
  let actual = Db.multi_get db keys in
  Alcotest.(check (list (option string))) "multi_get = map get" expected actual;
  check_int "gets accounted" (gets_before + 500) (Db.stats db).Stats.user_gets;
  (* Serial engine takes the List.map path and agrees too. *)
  let dev1 = Device.in_memory () in
  let db1 = Db.open_db ~config:(small_config ~parallelism:1) ~dev:dev1 () in
  run_workload db1 ~seed:7 ~ops:5000;
  Alcotest.(check (list (option string))) "serial multi_get agrees" expected
    (Db.multi_get db1 keys);
  Db.close db;
  Db.close db1

let test_multi_get_snapshot () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ~parallelism:2) ~dev () in
  Db.put db ~key:"a" "1";
  Db.put db ~key:"b" "1";
  let snap = Db.snapshot db in
  Db.put db ~key:"a" "2";
  Db.delete db "b";
  Db.flush db;
  Alcotest.(check (list (option string))) "snapshot view"
    [ Some "1"; Some "1" ]
    (Db.multi_get db ~snapshot:snap [ "a"; "b" ]);
  Alcotest.(check (list (option string))) "live view" [ Some "2"; None ]
    (Db.multi_get db [ "a"; "b" ]);
  Db.release db snap;
  Db.close db

(* ---------- cross-domain stress ---------- *)

(* One writer domain streams puts into the active memtable (config sized
   so nothing flushes: no version/file churn) while reader domains hammer
   get/multi_get/scan on a committed prefix. Readers must always see
   exactly the prefix values; keys written concurrently may surface or
   not, but never corrupt. *)
let test_writer_reader_stress () =
  let dev = Device.in_memory () in
  let config =
    { (Config.default) with
      write_buffer_size = 64 lsl 20;
      wal_enabled = false;
      compaction_parallelism = 2;
      block_cache_shards = 4 }
  in
  let db = Db.open_db ~config ~dev () in
  let stable = 2000 in
  for i = 0 to stable - 1 do
    Db.put db ~key:(Printf.sprintf "s%06d" i) (Printf.sprintf "stable%06d" i)
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          Db.put db ~key:(Printf.sprintf "w%08d" !i) (Printf.sprintf "live%08d" !i);
          incr i
        done;
        !i)
  in
  let reader r =
    Domain.spawn (fun () ->
        let rng = Rng.create (r + 1) in
        let ok = ref true in
        for _ = 1 to 3000 do
          let i = Rng.int rng stable in
          let key = Printf.sprintf "s%06d" i in
          match Db.get db key with
          | Some v -> if v <> Printf.sprintf "stable%06d" i then ok := false
          | None -> ok := false
        done;
        !ok)
  in
  let readers = List.init 3 reader in
  let all_ok = List.for_all Domain.join readers in
  Atomic.set stop true;
  let written = Domain.join writer in
  check_bool "readers saw consistent prefix under write load" true all_ok;
  check_bool "writer made progress" true (written > 0);
  (* Quiesced: everything lands and survives a flush + parallel compaction. *)
  Db.flush db;
  check_int "stable prefix intact" stable
    (List.length (Db.scan db ~lo:"s" ~hi:(Some "t") ()));
  Db.close db

(* ---------- config plumbing ---------- *)

let test_config_knobs () =
  let expect_invalid cfg =
    match Config.validate cfg with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid { Config.default with compaction_parallelism = 0 };
  expect_invalid { Config.default with block_cache_shards = 0 };
  expect_invalid { Config.default with max_open_tables = 1 };
  Config.validate { Config.default with compaction_parallelism = 8; block_cache_shards = 16 };
  (* the knobs reach the engine *)
  let dev = Device.in_memory () in
  let db =
    Db.open_db
      ~config:{ Config.default with block_cache_shards = 8; max_open_tables = 32 }
      ~dev ()
  in
  check_int "cache sharded" 8 (Lsm_storage.Block_cache.shard_count (Db.block_cache db));
  check_int "table cache bounded" 32 (Table_cache.capacity (Db.table_cache db));
  Db.close db

let suite =
  [
    Alcotest.test_case "pool: submit/await" `Quick test_pool_submit_await;
    Alcotest.test_case "pool: inline (size 0)" `Quick test_pool_inline;
    Alcotest.test_case "pool: map_list order" `Quick test_pool_map_list_order;
    Alcotest.test_case "pool: exceptions propagate" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool: shutdown drains" `Quick test_pool_shutdown_drains;
    Alcotest.test_case "cache: sharded basics" `Quick test_sharded_cache_basics;
    Alcotest.test_case "cache: sharded eviction" `Quick test_sharded_cache_eviction_budget;
    Alcotest.test_case "cache: concurrent access" `Quick test_sharded_cache_concurrent;
    Alcotest.test_case "table cache: LRU bound" `Quick test_table_cache_bound;
    Alcotest.test_case "subcompactions: serial = parallel" `Slow test_parallel_determinism;
    Alcotest.test_case "subcompactions: reproducible" `Slow test_parallel_self_determinism;
    Alcotest.test_case "multi_get = map get" `Quick test_multi_get_matches_get;
    Alcotest.test_case "multi_get: snapshots" `Quick test_multi_get_snapshot;
    Alcotest.test_case "stress: writer + readers" `Slow test_writer_reader_stress;
    Alcotest.test_case "config: new knobs" `Quick test_config_knobs;
  ]
