(* Tests for lsm_compaction: run caps per layout, file-picking policies. *)

module Policy = Lsm_compaction.Policy
module Picker = Lsm_compaction.Picker
module Table_meta = Lsm_sstable.Table_meta

let cmp = Lsm_util.Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let meta ?(tombs = 0) ?(created = 0) ?(size = 100) id lo hi =
  {
    Table_meta.file_id = id;
    file_name = Printf.sprintf "%d.sst" id;
    size;
    entries = 100;
    point_tombstones = tombs;
    range_tombstones = 0;
    min_key = lo;
    max_key = hi;
    min_seqno = 0;
    max_seqno = 0;
    created_at = created;
    data_bytes = size;
    ecc = None;
  }

(* ---------- run caps ---------- *)

let test_run_caps_leveling () =
  let p = Policy.leveled () in
  for l = 1 to 6 do
    check_int "always 1" 1 (Policy.run_cap p ~level:l ~last_level:6)
  done

let test_run_caps_tiering () =
  let p = Policy.tiered ~size_ratio:6 () in
  for l = 1 to 6 do
    check_int "always T" 6 (Policy.run_cap p ~level:l ~last_level:6)
  done

let test_run_caps_lazy_leveling () =
  let p = Policy.lazy_leveled ~size_ratio:5 () in
  check_int "intermediate tiered" 5 (Policy.run_cap p ~level:2 ~last_level:4);
  check_int "last leveled" 1 (Policy.run_cap p ~level:4 ~last_level:4)

let test_run_caps_hybrid () =
  let p =
    { (Policy.leveled ()) with Policy.layout = Policy.Hybrid { tiered_levels = 2; runs = 4 } }
  in
  check_int "level 1 tiered" 4 (Policy.run_cap p ~level:1 ~last_level:5);
  check_int "level 2 tiered" 4 (Policy.run_cap p ~level:2 ~last_level:5);
  check_int "level 3 leveled" 1 (Policy.run_cap p ~level:3 ~last_level:5)

let test_run_caps_custom () =
  let p = { (Policy.leveled ()) with Policy.layout = Policy.Run_caps [| 3; 2; 1 |] } in
  check_int "level 1" 3 (Policy.run_cap p ~level:1 ~last_level:5);
  check_int "level 2" 2 (Policy.run_cap p ~level:2 ~last_level:5);
  check_int "level 3" 1 (Policy.run_cap p ~level:3 ~last_level:5);
  check_int "beyond array reuses last" 1 (Policy.run_cap p ~level:5 ~last_level:5)

let test_level0_cap () =
  let p = Policy.leveled () in
  check_int "level 0 uses level0_limit" p.Policy.level0_limit
    (Policy.run_cap p ~level:0 ~last_level:3)

(* ---------- picking ---------- *)

let next_level =
  [ meta 10 "a" "f" ~size:500; meta 11 "g" "m" ~size:300; meta 12 "n" "z" ~size:800 ]

let candidates ?(ttl = None) ?(now = 100) files =
  Picker.annotate ~cmp ~now ~ttl ~next_level files

let test_annotate_overlap () =
  let cands = candidates [ meta 1 "a" "e"; meta 2 "f" "h"; meta 3 "x" "y" ] in
  match cands with
  | [ a; b; c ] ->
    check_int "file 1 overlaps first next file" 500 a.Picker.overlap_bytes;
    check_int "file 2 spans two next files" 800 b.Picker.overlap_bytes;
    check_int "file 3 overlaps last" 800 c.Picker.overlap_bytes
  | _ -> Alcotest.fail "expected 3 candidates"

let test_pick_least_overlap () =
  let cands = candidates [ meta 1 "a" "e"; meta 2 "f" "h"; meta 3 "x" "y" ] in
  match Picker.pick Policy.Least_overlap ~cursor:None cands with
  | Some m -> check_int "file 1 has least overlap" 1 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick"

let test_pick_oldest () =
  let cands =
    candidates [ meta 1 "a" "b" ~created:50; meta 2 "c" "d" ~created:10; meta 3 "e" "f" ~created:30 ]
  in
  match Picker.pick Policy.Oldest_file ~cursor:None cands with
  | Some m -> check_int "oldest file" 2 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick"

let test_pick_most_tombstones () =
  let cands =
    candidates [ meta 1 "a" "b" ~tombs:5; meta 2 "c" "d" ~tombs:50; meta 3 "e" "f" ~tombs:0 ]
  in
  match Picker.pick Policy.Most_tombstones ~cursor:None cands with
  | Some m -> check_int "densest tombstones" 2 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick"

let test_pick_round_robin_cursor () =
  let files = [ meta 1 "a" "c"; meta 2 "d" "f"; meta 3 "g" "i" ] in
  let cands = candidates files in
  (match Picker.pick Policy.Round_robin ~cursor:None cands with
  | Some m -> check_int "starts at smallest" 1 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick");
  (match Picker.pick Policy.Round_robin ~cursor:(Some "c") cands with
  | Some m -> check_int "continues past cursor" 2 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick");
  match Picker.pick Policy.Round_robin ~cursor:(Some "z") cands with
  | Some m -> check_int "wraps around" 1 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick"

let test_pick_expired_ttl () =
  (* now=100, ttl=40: files created before 60 with tombstones are expired. *)
  let files =
    [ meta 1 "a" "b" ~tombs:1 ~created:90; meta 2 "c" "d" ~tombs:3 ~created:10;
      meta 3 "e" "f" ~tombs:0 ~created:5 ]
  in
  let cands = candidates ~ttl:(Some 40) files in
  (match Picker.pick (Policy.Expired_ttl { ttl = 40 }) ~cursor:None cands with
  | Some m -> check_int "expired tombstone file wins" 2 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick");
  (* Without any expired file, falls back to least overlap. *)
  let fresh =
    candidates ~ttl:(Some 40) [ meta 1 "a" "e" ~tombs:1 ~created:90; meta 2 "x" "y" ~created:95 ]
  in
  match Picker.pick (Policy.Expired_ttl { ttl = 40 }) ~cursor:None fresh with
  | Some m -> check_int "fallback least overlap" 1 m.Table_meta.file_id
  | None -> Alcotest.fail "no pick"

let test_pick_empty () =
  check "empty yields none" true (Picker.pick Policy.Least_overlap ~cursor:None [] = None)

let test_describe () =
  check "describes leveling" true
    (String.length (Policy.describe (Policy.leveled ())) > 0);
  Alcotest.(check string) "movement names" "expired-ttl(7)"
    (Policy.movement_name (Policy.Expired_ttl { ttl = 7 }))

let suite =
  [
    ("run caps: leveling", `Quick, test_run_caps_leveling);
    ("run caps: tiering", `Quick, test_run_caps_tiering);
    ("run caps: lazy leveling", `Quick, test_run_caps_lazy_leveling);
    ("run caps: hybrid", `Quick, test_run_caps_hybrid);
    ("run caps: custom vector", `Quick, test_run_caps_custom);
    ("run caps: level 0", `Quick, test_level0_cap);
    ("annotate computes overlap", `Quick, test_annotate_overlap);
    ("pick least overlap", `Quick, test_pick_least_overlap);
    ("pick oldest", `Quick, test_pick_oldest);
    ("pick most tombstones", `Quick, test_pick_most_tombstones);
    ("pick round robin with cursor", `Quick, test_pick_round_robin_cursor);
    ("pick expired ttl (Lethe)", `Quick, test_pick_expired_ttl);
    ("pick on empty", `Quick, test_pick_empty);
    ("policy descriptions", `Quick, test_describe);
  ]
