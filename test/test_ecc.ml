(* Tests for the self-healing read path (DESIGN.md §14): the GF(256)
   Reed–Solomon coder, the SST parity-section format, in-place rot
   repair on reads and scrubs, the over-budget quarantine path, and the
   [Config.scrub_interval] scheduler. *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Codec = Lsm_util.Codec
module Rs = Lsm_util.Rs
module Lsm_error = Lsm_util.Lsm_error
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
module Sstable = Lsm_sstable.Sstable
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Stats = Lsm_core.Stats
module Doctor = Lsm_core.Doctor

let cmp = Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cls = Io_stats.C_misc
let qt t = let name, _speed, fn = QCheck_alcotest.to_alcotest t in (name, `Quick, fn)

(* ---------- Reed–Solomon properties ---------- *)

(* A tiny deterministic PRNG so shard contents and erasure positions are
   reproducible from the QCheck-generated seed. *)
let lcg seed =
  let s = ref (seed land 0x3fffffff) in
  fun n ->
    s := ((!s * 1103515245) + 12345) land 0x3fffffff;
    !s mod n

let random_shards rand ~k ~len =
  Array.init k (fun _ -> String.init len (fun _ -> Char.chr (rand 256)))

let prop_rs_roundtrip =
  QCheck.Test.make ~name:"rs: up to m erasures always decode exactly" ~count:300
    QCheck.(
      quad (int_range 1 10) (int_range 1 4) (int_range 1 48) (int_range 0 0x3ffffff))
    (fun (k, m, len, seed) ->
      let rand = lcg seed in
      let rs = Rs.create ~k ~m in
      let data = random_shards rand ~k ~len in
      let parity = Rs.encode rs data in
      let all = Array.append data parity in
      (* Erase up to m distinct slots anywhere in the stripe. *)
      let nerase = rand (m + 1) in
      let slots = Array.map (fun s -> Some s) all in
      let erased = ref 0 in
      while !erased < nerase do
        let p = rand (k + m) in
        if slots.(p) <> None then begin
          slots.(p) <- None;
          incr erased
        end
      done;
      match Rs.decode rs slots with
      | Some got -> got = data
      | None -> false)

let prop_rs_over_budget =
  QCheck.Test.make ~name:"rs: more than m erasures never mis-decode" ~count:200
    QCheck.(
      quad (int_range 1 10) (int_range 1 4) (int_range 1 32) (int_range 0 0x3ffffff))
    (fun (k, m, len, seed) ->
      let rand = lcg seed in
      let rs = Rs.create ~k ~m in
      let data = random_shards rand ~k ~len in
      let all = Array.append data (Rs.encode rs data) in
      let slots = Array.map (fun s -> Some s) all in
      (* Erase m+1 distinct slots: fewer than k survivors remain. *)
      let erased = ref 0 in
      while !erased < m + 1 do
        let p = rand (k + m) in
        if slots.(p) <> None then begin
          slots.(p) <- None;
          incr erased
        end
      done;
      Rs.decode rs slots = None)

let prop_rs_parity_detects_position =
  QCheck.Test.make ~name:"rs: each parity slot is independently sufficient" ~count:100
    QCheck.(triple (int_range 1 8) (int_range 1 24) (int_range 0 0x3ffffff))
    (fun (k, len, seed) ->
      let rand = lcg seed in
      let m = 2 in
      let rs = Rs.create ~k ~m in
      let data = random_shards rand ~k ~len in
      let all = Array.append data (Rs.encode rs data) in
      (* Erase one data shard plus one parity shard — still within m. *)
      let di = rand k in
      let pi = k + rand m in
      let slots = Array.mapi (fun i s -> if i = di || i = pi then None else Some s) all in
      Rs.decode rs slots = Some data)

(* ---------- Stripe-format round-trip ---------- *)

let e ?(kind = Entry.Put) ?(value = "") key seqno = { Entry.key; seqno; kind; value }

let many_entries n =
  List.init n (fun i -> e (Printf.sprintf "user%06d" i) (i + 1) ~value:(String.make 32 'v'))

let ecc_build_config ?(compression = Sstable.C_none) ?(restart_interval = 16) () =
  {
    Sstable.default_build_config with
    Sstable.block_size = 256;
    restart_interval;
    compression;
    ecc = Some (4, 2);
  }

let fresh_cache () = Block_cache.create ~capacity:(1 lsl 20) ()

let build_table ?config dev entries =
  Sstable.build ?config ~cmp ~dev ~cls:Io_stats.C_flush ~name:"t.sst" ~created_at:7
    (Iter.of_sorted_list cmp entries)

let device_bytes dev name = Device.read dev ~cls name ~off:0 ~len:(Device.size dev name)

(* The self-checksummed tail locator, parsed the way an external tool
   would: [u32 ecc_off | u32 ecc_len | u32 crc | u32 magic] twice. *)
let ecc_off_of_locator dev name =
  let fsize = Device.size dev name in
  let tail = Device.read dev ~cls name ~off:(fsize - 16) ~len:16 in
  let r = Codec.reader tail in
  Codec.get_u32 r

let test_stripe_roundtrip_matrix () =
  List.iter
    (fun compression ->
      List.iter
        (fun restart_interval ->
          let dev = Device.in_memory ~page_size:128 () in
          let entries = many_entries 400 in
          let config = ecc_build_config ~compression ~restart_interval () in
          ignore (build_table ~config dev entries);
          let r = Sstable.open_reader ~cmp ~dev ~cache:(fresh_cache ()) "t.sst" in
          let got = Iter.to_list (Sstable.iterator r ~cls ()) in
          check
            (Printf.sprintf "roundtrip (lz=%b restart=%d)"
               (compression = Sstable.C_lz) restart_interval)
            true (got = entries);
          Sstable.verify r ~cls;
          check_int "pristine table needs no scrub repairs" 0 (Sstable.scrub_ecc r ~cls))
        [ 1; 4; 16 ])
    [ Sstable.C_none; Sstable.C_lz ]

let test_ecc_off_has_no_section () =
  let dev = Device.in_memory ~page_size:128 () in
  let entries = many_entries 300 in
  let config = { (ecc_build_config ()) with Sstable.ecc = None } in
  ignore (build_table ~config dev entries);
  let r = Sstable.open_reader ~cmp ~dev ~cache:(fresh_cache ()) "t.sst" in
  check_int "ecc off: file is exactly the legacy image" (Device.size dev "t.sst")
    (Sstable.file_size r)

let test_ecc_on_section_after_image () =
  let dev = Device.in_memory ~page_size:128 () in
  let entries = many_entries 300 in
  ignore (build_table ~config:(ecc_build_config ()) dev entries);
  let r = Sstable.open_reader ~cmp ~dev ~cache:(fresh_cache ()) "t.sst" in
  let inner = Sstable.file_size r in
  let total = Device.size dev "t.sst" in
  check "ecc on: parity section follows the inner image" true (inner < total);
  check_int "locator points at the end of the inner image" inner
    (ecc_off_of_locator dev "t.sst")

(* ---------- In-place repair: every page of the file, one at a time ---------- *)

let flip_bit dev name ~off =
  let b = Device.read dev ~cls name ~off ~len:1 in
  Device.patch dev ~cls name ~off (String.make 1 (Char.chr (Char.code b.[0] lxor 1)))

(* Flip one bit in every page of the file in turn — data, meta, parity,
   section header, and both locator copies — and require each rot to be
   healed back to the pristine byte image by reads plus one scrub, with
   every entry served byte-exact throughout. *)
let test_flip_heal_every_page () =
  let dev = Device.in_memory ~page_size:128 () in
  let entries = many_entries 400 in
  ignore (build_table ~config:(ecc_build_config ()) dev entries);
  let pristine = device_bytes dev "t.sst" in
  let fsize = String.length pristine in
  let repaired = ref 0 and unrecoverable = ref 0 in
  let on_ecc = function
    | Sstable.Ecc_repaired { pages; _ } -> repaired := !repaired + pages
    | Sstable.Ecc_unrecoverable -> incr unrecoverable
  in
  let page = 128 in
  let npages = (fsize + page - 1) / page in
  for p = 0 to npages - 1 do
    flip_bit dev "t.sst" ~off:(p * page);
    (* A fresh cache per cycle: cached decoded blocks would mask the rot. *)
    let r = Sstable.open_reader ~cmp ~dev ~cache:(fresh_cache ()) ~on_ecc "t.sst" in
    let got = Iter.to_list (Sstable.iterator r ~cls ()) in
    check (Printf.sprintf "page %d: reads stay byte-exact" p) true (got = entries);
    ignore (Sstable.scrub_ecc r ~cls);
    check (Printf.sprintf "page %d: device healed to pristine bytes" p) true
      (String.equal (device_bytes dev "t.sst") pristine)
  done;
  check "at least one repair event fired" true (!repaired > 0);
  check_int "no rot was beyond the parity budget" 0 !unrecoverable

(* Rot past the per-stripe budget (3 pages of a 4+2 stripe) must surface
   as the usual typed corruption — never fabricated data — and report
   itself through [on_ecc]. *)
let test_over_budget_is_typed_corruption () =
  let dev = Device.in_memory ~page_size:128 () in
  let entries = many_entries 400 in
  ignore (build_table ~config:(ecc_build_config ()) dev entries);
  List.iter (fun off -> flip_bit dev "t.sst" ~off) [ 0; 128; 256 ];
  let unrecoverable = ref 0 in
  let on_ecc = function
    | Sstable.Ecc_repaired _ -> ()
    | Sstable.Ecc_unrecoverable -> incr unrecoverable
  in
  let r = Sstable.open_reader ~cmp ~dev ~cache:(fresh_cache ()) ~on_ecc "t.sst" in
  check "read of the dead stripe raises typed corruption" true
    (try
       ignore (Iter.to_list (Sstable.iterator r ~cls ()));
       false
     with Lsm_error.Error (Lsm_error.Corruption _) -> true);
  check "the failure was reported as unrecoverable" true (!unrecoverable > 0)

(* ---------- Db-level cycle: rot, reopen, read-heal, clean doctor ---------- *)

let db_ecc_config () =
  {
    Config.default with
    Config.write_buffer_size = 1 lsl 16;
    wal_sync_every_write = true;
    block_size = 256;
    ecc = Some { Config.ecc_data_pages = 4; ecc_parity_pages = 2 };
  }

let test_db_ecc_read_heals () =
  let dev = Device.in_memory ~page_size:256 () in
  let config = db_ecc_config () in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "value-%04d-%s" i (String.make 48 'v') in
  let n = 800 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  let hits = Device.plan_corruption dev ~seed:5 ~classes:[ Device.F_sst ] ~pages:1 () in
  check "injection hit the durable image" true (hits <> []);
  let db2 = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    match Db.get db2 (key i) with
    | Some v -> check (Printf.sprintf "exact value for %s" (key i)) true (v = value i)
    | None -> Alcotest.fail (Printf.sprintf "lost %s" (key i))
  done;
  check "nothing quarantined" true (Db.quarantined_tables db2 = []);
  check "integrity clean after repairs" true (Db.verify_integrity db2 = []);
  let st = Db.stats db2 in
  check "repairs counted" true (st.Stats.ecc_repairs > 0);
  check "repair latency histogram populated" true
    (Lsm_util.Histogram.count st.Stats.ecc_repair_ns > 0);
  check_int "nothing unrecoverable" 0 st.Stats.ecc_unrecoverable;
  Db.close db2;
  check "offline doctor sees a healed device" true (Doctor.verify dev = [])

(* ---------- Scheduled scrubbing ---------- *)

let scrub_config backend =
  {
    Config.default with
    Config.write_buffer_size = 4096;
    scrub_interval = 1e-9;
    compaction_backend = backend;
  }

let run_scrub_scheduling backend =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(scrub_config backend) ~dev () in
  for i = 0 to 999 do
    Db.put db ~key:(Printf.sprintf "key-%04d" i) (String.make 64 'v')
  done;
  Db.quiesce db;
  let st = Db.stats db in
  check "rotations scheduled scrub passes" true (st.Stats.scrub_runs_scheduled > 0);
  check "scheduled passes completed" true (st.Stats.scrub_runs > 0);
  check_int "clean store scrubs clean" 0 st.Stats.scrub_errors;
  Db.close db

let test_scrub_scheduling_inline () = run_scrub_scheduling Config.Inline
let test_scrub_scheduling_background () = run_scrub_scheduling Config.Background

let suite =
  [
    qt prop_rs_roundtrip;
    qt prop_rs_over_budget;
    qt prop_rs_parity_detects_position;
    ("stripe roundtrip across compression x restarts", `Quick, test_stripe_roundtrip_matrix);
    ("ecc off keeps the legacy format", `Quick, test_ecc_off_has_no_section);
    ("ecc section trails the inner image", `Quick, test_ecc_on_section_after_image);
    ("every page flip heals back to pristine", `Quick, test_flip_heal_every_page);
    ("over-budget rot stays typed corruption", `Quick, test_over_budget_is_typed_corruption);
    ("db reads heal single-page rot in place", `Quick, test_db_ecc_read_heals);
    ("scrub_interval schedules inline scrubs", `Quick, test_scrub_scheduling_inline);
    ("scrub_interval schedules background scrubs", `Quick, test_scrub_scheduling_background);
  ]
