(* Tests for lsm_storage: device accounting, crash simulation, block cache
   LRU behaviour, WAL framing and torn-tail recovery. *)

open Lsm_storage
module Entry = Lsm_record.Entry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- Device ---------- *)

let test_device_write_read () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_flush "f1" in
  Device.append w "hello ";
  Device.append w "world";
  check_int "written" 11 (Device.written w);
  Device.close w;
  check_str "read all" "hello world" (Device.read dev ~cls:Io_stats.C_user_read "f1" ~off:0 ~len:11);
  check_str "read mid" "lo wo" (Device.read dev ~cls:Io_stats.C_user_read "f1" ~off:3 ~len:5);
  check_int "size" 11 (Device.size dev "f1")

let test_device_missing_file () =
  let dev = Device.in_memory () in
  check "exists false" false (Device.exists dev "nope");
  Alcotest.check_raises "read missing" Not_found (fun () ->
      ignore (Device.read dev ~cls:Io_stats.C_user_read "nope" ~off:0 ~len:1))

let test_device_page_accounting () =
  let dev = Device.in_memory ~page_size:4096 () in
  let w = Device.open_writer dev ~cls:Io_stats.C_flush "f" in
  Device.append w (String.make 10000 'x');
  Device.close w;
  let st = Device.stats dev in
  check_int "write pages = ceil(10000/4096)" 3 (Io_stats.pages_written ~cls:Io_stats.C_flush st);
  check_int "write bytes" 10000 (Io_stats.bytes_written ~cls:Io_stats.C_flush st);
  (* Read spanning a page boundary counts both pages. *)
  ignore (Device.read dev ~cls:Io_stats.C_user_read "f" ~off:4090 ~len:12);
  check_int "read pages" 2 (Io_stats.pages_read ~cls:Io_stats.C_user_read st);
  ignore (Device.read dev ~cls:Io_stats.C_user_read "f" ~off:0 ~len:0);
  check_int "empty read adds nothing" 2 (Io_stats.pages_read ~cls:Io_stats.C_user_read st)

let test_device_delete_and_list () =
  let dev = Device.in_memory () in
  List.iter
    (fun n ->
      let w = Device.open_writer dev ~cls:Io_stats.C_misc n in
      Device.append w n;
      Device.close w)
    [ "b"; "a"; "c" ];
  Alcotest.(check (list string)) "sorted listing" [ "a"; "b"; "c" ] (Device.list_files dev);
  check_int "total bytes" 3 (Device.total_bytes dev);
  Device.delete dev "b";
  Alcotest.(check (list string)) "after delete" [ "a"; "c" ] (Device.list_files dev);
  Device.delete dev "b" (* idempotent *)

let test_device_crash_loses_unsynced () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_user_write "log" in
  Device.append w "durable";
  Device.sync w;
  Device.append w "-volatile";
  Device.crash dev;
  check_int "only synced prefix survives" 7 (Device.size dev "log");
  check_str "content" "durable" (Device.read dev ~cls:Io_stats.C_misc "log" ~off:0 ~len:7);
  Alcotest.check_raises "writer unusable after crash"
    (Invalid_argument "Device.append: file sealed (crashed?)") (fun () -> Device.append w "x")

let test_device_double_writer_rejected () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_misc "f" in
  Alcotest.check_raises "second writer" (Invalid_argument "Device.open_writer: already open: f")
    (fun () -> ignore (Device.open_writer dev ~cls:Io_stats.C_misc "f"));
  Device.close w

let test_device_on_disk_backend () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lsm_test_disk" in
  let dev = Device.on_disk ~dir () in
  let w = Device.open_writer dev ~cls:Io_stats.C_flush "t.sst" in
  Device.append w "0123456789";
  Device.close w;
  check_str "read back from real file" "345" (Device.read dev ~cls:Io_stats.C_user_read "t.sst" ~off:3 ~len:3);
  check_int "size" 10 (Device.size dev "t.sst");
  check "listed" true (List.mem "t.sst" (Device.list_files dev));
  Device.delete dev "t.sst";
  check "deleted" false (Device.exists dev "t.sst")

(* Backend parity: the exact same operation sequence, observable result
   by observable result, against the in-memory simulator and the real
   file system. The crash/corruption harnesses run on the simulator, so
   any behavioural drift between the two backends would silently erode
   what those sweeps prove about the on-disk engine. *)
let test_device_backend_parity () =
  let fresh_disk () =
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "lsm_parity_disk" in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Device.on_disk ~page_size:512 ~dir ()
  in
  let exercise dev =
    let results = ref [] in
    let record fmt = Printf.ksprintf (fun s -> results := s :: !results) fmt in
    let w = Device.open_writer dev ~cls:Io_stats.C_flush "000001.sst" in
    Device.append w "alpha-";
    record "written mid-stream %d" (Device.written w);
    Device.append w "beta";
    Device.sync w;
    Device.close w;
    record "size %d" (Device.size dev "000001.sst");
    record "read all %s" (Device.read dev ~cls:Io_stats.C_user_read "000001.sst" ~off:0 ~len:10);
    record "read mid %s" (Device.read dev ~cls:Io_stats.C_user_read "000001.sst" ~off:2 ~len:5);
    record "read empty %S" (Device.read dev ~cls:Io_stats.C_user_read "000001.sst" ~off:10 ~len:0);
    (record "read oob %s"
       (try
          ignore (Device.read dev ~cls:Io_stats.C_user_read "000001.sst" ~off:6 ~len:10);
          "no-exn"
        with Invalid_argument _ -> "invalid-argument"));
    (record "read missing %s"
       (try
          ignore (Device.read dev ~cls:Io_stats.C_user_read "nope" ~off:0 ~len:1);
          "no-exn"
        with Not_found -> "not-found"));
    (* A second file, then atomic rename over the first. *)
    let w2 = Device.open_writer dev ~cls:Io_stats.C_misc "MANIFEST.tmp" in
    Device.append w2 "manifest-v2";
    Device.close w2;
    Device.rename dev "MANIFEST.tmp" "000001.sst";
    record "rename replaces: size %d" (Device.size dev "000001.sst");
    record "rename replaces: content %s"
      (Device.read dev ~cls:Io_stats.C_misc "000001.sst" ~off:0 ~len:11);
    record "rename removes src %b" (Device.exists dev "MANIFEST.tmp");
    (record "rename missing src %s"
       (try
          Device.rename dev "ghost" "x";
          "no-exn"
        with Not_found -> "not-found"));
    (* Listing, existence, deletion (including idempotence). *)
    let w3 = Device.open_writer dev ~cls:Io_stats.C_misc "wal-000000.log" in
    Device.append w3 "wal";
    Device.close w3;
    record "list %s" (String.concat "," (Device.list_files dev));
    record "total bytes %d" (Device.total_bytes dev);
    Device.delete dev "wal-000000.log";
    Device.delete dev "wal-000000.log";
    record "after delete %s" (String.concat "," (Device.list_files dev));
    record "exists deleted %b" (Device.exists dev "wal-000000.log");
    (record "double writer %s"
       (let w4 = Device.open_writer dev ~cls:Io_stats.C_misc "dup" in
        let r =
          try
            ignore (Device.open_writer dev ~cls:Io_stats.C_misc "dup");
            "no-exn"
          with Invalid_argument _ -> "invalid-argument"
        in
        Device.close w4;
        r));
    record "page size %d" (Device.page_size dev);
    List.rev !results
  in
  let mem = exercise (Device.in_memory ~page_size:512 ()) in
  let disk = exercise (fresh_disk ()) in
  Alcotest.(check (list string)) "backends observably identical" mem disk

let test_io_stats_diff () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_flush "f" in
  Device.append w (String.make 100 'a');
  Device.close w;
  let before = Io_stats.copy (Device.stats dev) in
  let w2 = Device.open_writer dev ~cls:Io_stats.C_flush "g" in
  Device.append w2 (String.make 50 'b');
  Device.close w2;
  let d = Io_stats.diff (Device.stats dev) before in
  check_int "diff isolates the second write" 50 (Io_stats.bytes_written d)

let test_write_amplification () =
  let st = Io_stats.create () in
  Io_stats.record_write st Io_stats.C_flush ~pages:1 ~bytes:100;
  Io_stats.record_write st Io_stats.C_compaction_write ~pages:3 ~bytes:300;
  Alcotest.(check (float 0.001)) "wa" 4.0 (Io_stats.write_amplification st ~user_bytes:100)

(* ---------- Block cache ---------- *)

(* These tests exercise the LRU machinery with plain strings; the byte
   charge is the payload length, as it was before the cache went
   polymorphic. *)
let insert_str c ~file ~off s = Block_cache.insert c ~file ~off ~bytes:(String.length s) s

let test_cache_hit_miss () =
  let c = Block_cache.create ~capacity:1024 () in
  check "miss on empty" true (Block_cache.find c ~file:"f" ~off:0 = None);
  insert_str c ~file:"f" ~off:0 "data";
  check "hit" true (Block_cache.find c ~file:"f" ~off:0 = Some "data");
  check_int "hits" 1 (Block_cache.hits c);
  check_int "misses" 1 (Block_cache.misses c);
  Alcotest.(check (float 0.001)) "hit rate" 0.5 (Block_cache.hit_rate c)

let test_cache_lru_eviction () =
  let c = Block_cache.create ~capacity:30 () in
  insert_str c ~file:"f" ~off:0 (String.make 10 'a');
  insert_str c ~file:"f" ~off:1 (String.make 10 'b');
  insert_str c ~file:"f" ~off:2 (String.make 10 'c');
  (* Touch block 0 so block 1 is LRU. *)
  ignore (Block_cache.find c ~file:"f" ~off:0);
  insert_str c ~file:"f" ~off:3 (String.make 10 'd');
  check "0 kept (recently used)" true (Block_cache.find c ~file:"f" ~off:0 <> None);
  check "1 evicted (LRU)" true (Block_cache.find c ~file:"f" ~off:1 = None);
  check "2 kept" true (Block_cache.find c ~file:"f" ~off:2 <> None);
  check_int "one eviction" 1 (Block_cache.evictions c);
  check "within capacity" true (Block_cache.used_bytes c <= 30)

let test_cache_oversized_not_cached () =
  let c = Block_cache.create ~capacity:8 () in
  insert_str c ~file:"f" ~off:0 (String.make 100 'x');
  check "not cached" true (Block_cache.find c ~file:"f" ~off:0 = None);
  check_int "usage zero" 0 (Block_cache.used_bytes c)

let test_cache_zero_capacity () =
  let c = Block_cache.create ~capacity:0 () in
  insert_str c ~file:"f" ~off:0 "x";
  check "never caches" true (Block_cache.find c ~file:"f" ~off:0 = None)

let test_cache_evict_file () =
  let c = Block_cache.create ~capacity:1000 () in
  insert_str c ~file:"a" ~off:0 "11";
  insert_str c ~file:"a" ~off:1 "22";
  insert_str c ~file:"b" ~off:0 "33";
  check_int "evicts both of a" 2 (Block_cache.evict_file c "a");
  check "b survives" true (Block_cache.find c ~file:"b" ~off:0 <> None);
  check_int "count" 1 (Block_cache.block_count c)

let test_cache_replace_same_key () =
  let c = Block_cache.create ~capacity:100 () in
  insert_str c ~file:"f" ~off:0 "old";
  insert_str c ~file:"f" ~off:0 "newer";
  check "replaced" true (Block_cache.find c ~file:"f" ~off:0 = Some "newer");
  check_int "usage reflects replacement" 5 (Block_cache.used_bytes c)

let test_cache_get_or_load () =
  let c = Block_cache.create ~capacity:100 () in
  let loads = ref 0 in
  let load () = incr loads; ("blk", 3) in
  check_str "first loads" "blk" (Block_cache.get_or_load c ~file:"f" ~off:7 load);
  check_str "second cached" "blk" (Block_cache.get_or_load c ~file:"f" ~off:7 load);
  check_int "loaded once" 1 !loads

let prop_cache_never_exceeds_capacity =
  QCheck.Test.make ~name:"cache stays within capacity" ~count:100
    QCheck.(list (pair (int_bound 50) (int_bound 40)))
    (fun ops ->
      let c = Block_cache.create ~capacity:128 () in
      List.iter (fun (off, len) -> insert_str c ~file:"f" ~off (String.make len 'x')) ops;
      Block_cache.used_bytes c <= 128)

(* ---------- WAL ---------- *)

let batch1 = [ Entry.put ~key:"a" ~seqno:1 "1"; Entry.delete ~key:"b" ~seqno:2 ]
let batch2 = [ Entry.put ~key:"c" ~seqno:3 "33" ]

let test_wal_roundtrip () =
  let dev = Device.in_memory () in
  let wal = Wal.create dev ~name:"wal" in
  Wal.append wal batch1;
  Wal.append wal batch2;
  Wal.close wal;
  let got = ref [] in
  let n = Wal.replay dev ~name:"wal" (fun b -> got := b :: !got) in
  check_int "two batches" 2 n;
  check "contents preserved" true (List.rev !got = [ batch1; batch2 ])

let test_wal_empty_batch_skipped () =
  let dev = Device.in_memory () in
  let wal = Wal.create dev ~name:"wal" in
  Wal.append wal [];
  check_int "nothing written" 0 (Wal.size wal);
  Wal.close wal

let test_wal_missing_file () =
  let dev = Device.in_memory () in
  check_int "no file -> 0 batches" 0 (Wal.replay dev ~name:"nothing" (fun _ -> assert false))

let test_wal_torn_tail () =
  let dev = Device.in_memory () in
  let wal = Wal.create dev ~name:"wal" in
  Wal.append wal batch1 ~sync:true;
  (* Unsynced batch is torn away by the crash. *)
  Wal.append wal batch2 ~sync:false;
  Device.crash dev;
  let got = ref [] in
  let n = Wal.replay dev ~name:"wal" (fun b -> got := b :: !got) in
  check_int "only the synced batch" 1 n;
  check "it is batch1" true (!got = [ batch1 ])

let test_wal_corrupt_record_stops_replay () =
  let dev = Device.in_memory () in
  let wal = Wal.create dev ~name:"wal" in
  Wal.append wal batch1;
  Wal.append wal batch2;
  Wal.close wal;
  (* Corrupt a byte inside the second record (before the seal frame). *)
  let len = Device.size dev "wal" in
  let all = Device.read dev ~cls:Io_stats.C_misc "wal" ~off:0 ~len in
  let corrupted = Bytes.of_string all in
  Bytes.set corrupted (len - Wal.seal_size - 1) '\xff';
  let w = Device.open_writer dev ~cls:Io_stats.C_misc "wal2" in
  Device.append w (Bytes.to_string corrupted);
  Device.close w;
  (* The log is sealed (cleanly closed), so a bad record is silent
     corruption, not a torn tail: replay raises the typed error. *)
  (match Wal.replay dev ~name:"wal2" (fun _ -> ()) with
  | _ -> Alcotest.fail "sealed WAL with corrupt record must raise"
  | exception Lsm_util.Lsm_error.Error (Lsm_util.Lsm_error.Corruption _) -> ());
  (* Without the seal, a *complete* rotten record still bears the bit-rot
     tell (its payload is all there, only the CRC disagrees): typed. *)
  let w = Device.open_writer dev ~cls:Io_stats.C_misc "wal3" in
  Device.append w (Bytes.sub_string corrupted 0 (len - Wal.seal_size));
  Device.close w;
  (match Wal.replay dev ~name:"wal3" (fun _ -> ()) with
  | _ -> Alcotest.fail "complete rotten record must raise"
  | exception Lsm_util.Lsm_error.Error (Lsm_util.Lsm_error.Corruption _) -> ());
  (* A genuinely torn tail — the last record cut short mid-payload — is
     the crash artifact replay tolerates: keep the prefix, stop. *)
  let w = Device.open_writer dev ~cls:Io_stats.C_misc "wal4" in
  Device.append w (Bytes.sub_string corrupted 0 (len - Wal.seal_size - 4));
  Device.close w;
  let n = Wal.replay dev ~name:"wal4" (fun _ -> ()) in
  check_int "stops at torn tail" 1 n

let prop_wal_replay_preserves_batches =
  QCheck.Test.make ~name:"wal replay = appended batches" ~count:100
    QCheck.(
      list_of_size
        Gen.(0 -- 12)
        (list_of_size Gen.(0 -- 12)
           (pair (string_gen_of_size Gen.(1 -- 8) Gen.printable)
              (string_gen_of_size Gen.(0 -- 32) Gen.printable))))
    (fun batches ->
      let batches =
        List.map (fun b -> List.mapi (fun i (k, v) -> Entry.put ~key:k ~seqno:i v) b) batches
        |> List.filter (fun b -> b <> [])
      in
      let dev = Device.in_memory () in
      let wal = Wal.create dev ~name:"w" in
      List.iter (Wal.append wal) batches;
      Wal.close wal;
      let got = ref [] in
      ignore (Wal.replay dev ~name:"w" (fun b -> got := b :: !got));
      List.rev !got = batches)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("device write/read", `Quick, test_device_write_read);
    ("device missing file", `Quick, test_device_missing_file);
    ("device page accounting", `Quick, test_device_page_accounting);
    ("device delete & list", `Quick, test_device_delete_and_list);
    ("device crash loses unsynced bytes", `Quick, test_device_crash_loses_unsynced);
    ("device rejects double writer", `Quick, test_device_double_writer_rejected);
    ("device on-disk backend", `Quick, test_device_on_disk_backend);
    ("device backend parity", `Quick, test_device_backend_parity);
    ("io stats diff", `Quick, test_io_stats_diff);
    ("write amplification", `Quick, test_write_amplification);
    ("cache hit/miss", `Quick, test_cache_hit_miss);
    ("cache LRU eviction order", `Quick, test_cache_lru_eviction);
    ("cache rejects oversized blocks", `Quick, test_cache_oversized_not_cached);
    ("cache zero capacity", `Quick, test_cache_zero_capacity);
    ("cache evict file", `Quick, test_cache_evict_file);
    ("cache replace same key", `Quick, test_cache_replace_same_key);
    ("cache get_or_load", `Quick, test_cache_get_or_load);
    ("wal roundtrip", `Quick, test_wal_roundtrip);
    ("wal skips empty batches", `Quick, test_wal_empty_batch_skipped);
    ("wal missing file", `Quick, test_wal_missing_file);
    ("wal torn tail after crash", `Quick, test_wal_torn_tail);
    ("wal stops at corrupt record", `Quick, test_wal_corrupt_record_stops_replay);
    qt prop_cache_never_exceeds_capacity;
    qt prop_wal_replay_preserves_batches;
  ]
