(* Regression tests for the serving-path races fixed alongside the
   server PR: the unsynchronized snapshot registry (a registration
   racing a compaction plan could be lost, letting the merge filter
   drop versions a live snapshot still needs), and the per-key read
   views in multi_get/get (a concurrent Write_batch could be observed
   half-applied across one result list). All stress tests run with
   lockdep enforcement on and background workers = 4 — the ISSUE's
   acceptance configuration. *)

module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Write_batch = Lsm_core.Write_batch
module Snapshot = Lsm_core.Snapshot
module Ordered_mutex = Lsm_util.Ordered_mutex
module Rng = Lsm_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_lockdep f =
  let was = Ordered_mutex.enabled () in
  Ordered_mutex.set_enforce true;
  Fun.protect ~finally:(fun () -> Ordered_mutex.set_enforce was) f

(* Small buffers so a few thousand writes produce real flush/compaction
   traffic on the lane. *)
let bg_config ?(workers = 4) () =
  {
    Config.default with
    write_buffer_size = 4 * 1024;
    level1_capacity = 16 * 1024;
    target_file_size = 4 * 1024;
    compaction_backend = Config.Background;
    compaction_workers = workers;
    wal_enabled = false;
  }

let key i = Printf.sprintf "key%06d" i
let value tag i = Printf.sprintf "v%08d-%06d" tag i

(* ---------- snapshot registry under churn ---------- *)

(* Three domains register/release snapshots as fast as they can while
   the main domain floods writes (rotations, flushes, merges on 4
   workers — every one of which copies the registry at plan time).
   Pre-fix, the plain-list RMW in snapshot/release loses registrations
   under exactly this interleaving; post-fix, lockdep-on, the run is
   clean and every churner's snapshots read consistent values. *)
let test_snapshot_churn () =
  with_lockdep @@ fun () ->
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(bg_config ()) ~dev () in
  (* Seed a stable prefix every snapshot must be able to read. *)
  for i = 0 to 63 do
    Db.put db ~key:(key i) (value 0 i)
  done;
  Db.flush db;
  let stop = Atomic.make false in
  let bad_reads = Atomic.make 0 in
  let churns = Atomic.make 0 in
  let churner seed =
    Domain.spawn (fun () ->
        let rng = Rng.create seed in
        while not (Atomic.get stop) do
          let s = Db.snapshot db in
          (* A snapshot must always see SOME complete value for a seeded
             key: the point of registry consistency is that compaction
             never drops the version this seqno pins. *)
          let k = key (Rng.int rng 64) in
          (match Db.get db ~snapshot:s k with
          | Some _ -> ()
          | None -> Atomic.incr bad_reads);
          Db.release db s;
          Atomic.incr churns
        done)
  in
  let churners = List.init 3 (fun d -> churner (1000 + d)) in
  for i = 0 to 4_999 do
    Db.put db ~key:(key (i mod 512)) (value 1 i)
  done;
  Db.quiesce db;
  Atomic.set stop true;
  List.iter Domain.join churners;
  Db.quiesce db;
  check_bool "churners made progress" true (Atomic.get churns > 100);
  check_int "no snapshot lost its view" 0 (Atomic.get bad_reads);
  check_int "registry drains to empty" 0 (List.length (Db.live_snapshots db));
  (match Db.check_invariants db with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Db.close db

(* ---------- snapshot point-in-time across compaction ---------- *)

(* A snapshot taken between two generations of values must read exactly
   the first generation after flush + full compaction: the registry copy
   captured at plan time forces the merge filter to retain the pinned
   versions. (Releasing the snapshot and compacting again lets them
   go — checked too, or the registry would only ever grow.) *)
let test_snapshot_point_in_time () =
  with_lockdep @@ fun () ->
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(bg_config ~workers:2 ()) ~dev () in
  let n = 200 in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value 1 i)
  done;
  let s = Db.snapshot db in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value 2 i)
  done;
  Db.flush db;
  Db.major_compact db;
  Db.quiesce db;
  for i = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "snapshot view of %s" (key i))
      (Some (value 1 i))
      (Db.get db ~snapshot:s (key i));
    Alcotest.(check (option string))
      (Printf.sprintf "live view of %s" (key i))
      (Some (value 2 i))
      (Db.get db (key i))
  done;
  Db.release db s;
  check_int "registry empty after release" 0 (List.length (Db.live_snapshots db));
  Db.major_compact db;
  Db.quiesce db;
  Alcotest.(check (option string))
    "released versions compact away to the live value" (Some (value 2 0))
    (Db.get db (key 0));
  Db.close db

(* ---------- multi_get vs concurrent Write_batch ---------- *)

(* One writer domain applies batches that overwrite a fixed key group
   with a uniform tag; the reader multi_gets the group continuously.
   Atomicity contract: every result list must carry ONE tag — a mixed
   list is a torn read of the batch. Run on both execution paths. *)
let torn_mget_stress ~parallelism () =
  with_lockdep @@ fun () ->
  let dev = Device.in_memory () in
  let config = { (bg_config ()) with compaction_parallelism = parallelism } in
  let db = Db.open_db ~config ~dev () in
  let group = 16 in
  let keys = List.init group key in
  (* Generation 0 so the very first reads see a full group. *)
  let wb0 = Write_batch.create () in
  List.iter (fun k -> Write_batch.put wb0 ~key:k (value 0 0)) keys;
  Db.apply_batch db wb0;
  let rounds = 600 in
  let writer =
    Domain.spawn (fun () ->
        for tag = 1 to rounds do
          let wb = Write_batch.create () in
          List.iter (fun k -> Write_batch.put wb ~key:k (value tag 0)) keys;
          Db.apply_batch db wb
        done)
  in
  let torn = ref 0 in
  let incomplete = ref 0 in
  let reads = ref 0 in
  let running = ref true in
  while !running do
    let results = Db.multi_get db keys in
    incr reads;
    let tags =
      List.filter_map
        (fun r ->
          match r with
          | Some v when String.length v >= 9 -> Some (String.sub v 1 8)
          | Some _ -> None
          | None ->
            incr incomplete;
            None)
        results
    in
    (match tags with
    | [] -> ()
    | t0 :: rest ->
      if List.exists (fun x -> x <> t0) rest then incr torn;
      if t0 = Printf.sprintf "%08d" rounds then running := false);
    if !reads > 200_000 then running := false
  done;
  Domain.join writer;
  Db.quiesce db;
  check_bool "reader made progress" true (!reads > 10);
  check_int "no torn multi_get result" 0 !torn;
  check_int "no missing key inside a batch read" 0 !incomplete;
  Db.close db

let test_torn_mget_fallback () = torn_mget_stress ~parallelism:1 ()
let test_torn_mget_pool () = torn_mget_stress ~parallelism:4 ()

(* Same contract for single gets against batch writes: a get can return
   any generation, but never a value that was not a complete batch's
   write (trivially true for puts of whole values — the interesting
   assertion is that get never raises and never returns a stale-tagged
   value OLDER than one it already returned for the same key). *)
let test_get_monotonic_under_batches () =
  with_lockdep @@ fun () ->
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(bg_config ()) ~dev () in
  let k = key 0 in
  Db.put db ~key:k (value 0 0);
  let rounds = 400 in
  let writer =
    Domain.spawn (fun () ->
        for tag = 1 to rounds do
          let wb = Write_batch.create () in
          Write_batch.put wb ~key:k (value tag 0);
          Db.apply_batch db wb
        done)
  in
  let last = ref (-1) in
  let regressions = ref 0 in
  let continue = ref true in
  while !continue do
    (match Db.get db k with
    | Some v when String.length v >= 9 ->
      let tag = int_of_string (String.sub v 1 8) in
      if tag < !last then incr regressions;
      last := max !last tag;
      if tag = rounds then continue := false
    | _ -> incr regressions);
    if !last > rounds then continue := false
  done;
  Domain.join writer;
  check_int "visible seqno never goes backwards" 0 !regressions;
  Db.quiesce db;
  Db.close db

let suite =
  [
    Alcotest.test_case "snapshot registry survives multi-domain churn" `Slow
      test_snapshot_churn;
    Alcotest.test_case "snapshot reads exact point-in-time state across compaction" `Quick
      test_snapshot_point_in_time;
    Alcotest.test_case "multi_get vs concurrent batch: fallback path untorn" `Slow
      test_torn_mget_fallback;
    Alcotest.test_case "multi_get vs concurrent batch: pool path untorn" `Slow
      test_torn_mget_pool;
    Alcotest.test_case "get never regresses under concurrent batches" `Slow
      test_get_monotonic_under_batches;
  ]
