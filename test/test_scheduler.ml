(* Tests for the background flush/compaction scheduler: the job lane and
   its failure latch, version pinning (readers never lose a table to a
   concurrent compaction), write backpressure, and — the load-bearing
   one — logical equivalence: a database run with the Background backend
   must hold exactly the same entries as one run Inline. *)

module Device = Lsm_storage.Device
module Entry = Lsm_record.Entry
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Stats = Lsm_core.Stats
module Scheduler = Lsm_core.Scheduler
module Version = Lsm_core.Version
module Policy = Lsm_compaction.Policy
module Rng = Lsm_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- scheduler primitive ---------- *)

let test_scheduler_runs_jobs () =
  let s = Scheduler.create () in
  let hits = Atomic.make 0 in
  for _ = 1 to 25 do
    Scheduler.enqueue s (fun () -> Atomic.incr hits)
  done;
  Scheduler.quiesce s;
  check_int "all jobs ran" 25 (Atomic.get hits);
  check_int "drained" 0 (Scheduler.pending s)

let test_scheduler_serializes () =
  (* Single lane: jobs never overlap, and run in enqueue order. *)
  let s = Scheduler.create () in
  let trace = ref [] in
  let running = Atomic.make 0 in
  let overlapped = Atomic.make false in
  for i = 1 to 10 do
    Scheduler.enqueue s (fun () ->
        if Atomic.fetch_and_add running 1 <> 0 then Atomic.set overlapped true;
        trace := i :: !trace;
        ignore (Atomic.fetch_and_add running (-1)))
  done;
  Scheduler.quiesce s;
  check_bool "no two jobs overlapped" false (Atomic.get overlapped);
  Alcotest.(check (list int)) "enqueue order" (List.init 10 (fun i -> i + 1)) (List.rev !trace)

exception Boom

let test_scheduler_failure_latch () =
  let s = Scheduler.create () in
  Scheduler.enqueue s (fun () -> raise Boom);
  Alcotest.check_raises "quiesce re-raises" Boom (fun () -> Scheduler.quiesce s);
  (* Delivered exactly once: the re-raise clears the latch... *)
  Scheduler.quiesce s;
  (* ...and the scheduler keeps accepting work. *)
  let ran = ref false in
  Scheduler.enqueue s (fun () -> ran := true);
  Scheduler.quiesce s;
  check_bool "subsequent jobs run" true !ran;
  (* [shutdown] drains silently even with a fresh failure parked (the
     close path must succeed after a planned device crash). *)
  Scheduler.enqueue s (fun () -> raise Boom);
  Scheduler.shutdown s;
  Scheduler.quiesce s

let test_scheduler_wait_until () =
  let s = Scheduler.create () in
  for _ = 1 to 8 do
    Scheduler.enqueue s (fun () -> ignore (Sys.opaque_identity (String.make 64 'x')))
  done;
  (* Exits when the predicate holds; at the latest when the lane drains. *)
  Scheduler.wait_until s (fun ~pending ~unapplied_bytes:_ -> pending <= 2);
  check_bool "below threshold" true (Scheduler.pending s <= 2);
  Scheduler.wait_until s (fun ~pending ~unapplied_bytes:_ -> pending = 0);
  check_int "drained" 0 (Scheduler.pending s)

(* ---------- multi-worker dispatch ---------- *)

(* Tickets whose keys touch levels >= 2 apart may overlap in time; the
   first spins until it observes the second running (bounded by a
   timeout so a regression fails rather than hangs). *)
let test_nonconflicting_tickets_overlap () =
  let s = Scheduler.create ~workers:2 () in
  let running = Atomic.make 0 in
  let max_running = Atomic.make 0 in
  let job () =
    let r = 1 + Atomic.fetch_and_add running 1 in
    if r > Atomic.get max_running then Atomic.set max_running r;
    let t0 = Unix.gettimeofday () in
    while Atomic.get running < 2 && Unix.gettimeofday () -. t0 < 5. do
      Domain.cpu_relax ()
    done;
    if Atomic.get running > Atomic.get max_running then
      Atomic.set max_running (Atomic.get running);
    ignore (Atomic.fetch_and_add running (-1));
    fun () -> ()
  in
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 0; lo = "a"; hi = "m" })
    ~input_bytes:0 ~execute:job;
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 3; lo = "a"; hi = "m" })
    ~input_bytes:0 ~execute:job;
  Scheduler.quiesce s;
  check_int "distant levels ran concurrently" 2 (Atomic.get max_running);
  Scheduler.shutdown s

(* Same level (or adjacent with overlapping ranges): never concurrent,
   and edits still commit in enqueue order. *)
let test_conflicting_tickets_serialize () =
  let s = Scheduler.create ~workers:4 () in
  let inside = Atomic.make false in
  let overlapped = Atomic.make false in
  let commits = ref [] in
  let job i () =
    if Atomic.get inside then Atomic.set overlapped true;
    Atomic.set inside true;
    Unix.sleepf 0.01;
    Atomic.set inside false;
    fun () -> commits := i :: !commits
  in
  for i = 1 to 4 do
    Scheduler.submit s
      ~key:(Scheduler.Compact { level = 2; lo = "a"; hi = "z" })
      ~input_bytes:0 ~execute:(job i)
  done;
  (* Adjacent level, overlapping range: also serialized against level 2. *)
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 3; lo = "m"; hi = "q" })
    ~input_bytes:0 ~execute:(job 5);
  Scheduler.quiesce s;
  check_bool "conflicting tickets never overlapped" false (Atomic.get overlapped);
  Alcotest.(check (list int)) "edits committed in enqueue order" [ 1; 2; 3; 4; 5 ]
    (List.rev !commits);
  Scheduler.shutdown s

(* A parked out-of-order edit whose predecessor fails must be discarded:
   the failed ticket's successors were planned against a version that
   will never exist. *)
let test_failed_predecessor_discards_parked () =
  let s = Scheduler.create ~workers:2 () in
  let gate = Atomic.make false in
  let parked = Atomic.make false in
  let committed = Atomic.make false in
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 0; lo = "a"; hi = "b" })
    ~input_bytes:0
    ~execute:(fun () ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        raise Boom);
  (* Distant level: runs concurrently, finishes first, parks its edit. *)
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 4; lo = "a"; hi = "b" })
    ~input_bytes:0
    ~execute:(fun () ->
        Atomic.set parked true;
        fun () -> Atomic.set committed true);
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  Atomic.set gate true;
  Alcotest.check_raises "predecessor failure re-raised" Boom (fun () -> Scheduler.quiesce s);
  check_bool "parked successor edit discarded, not committed" false (Atomic.get committed);
  check_int "queue drained" 0 (Scheduler.pending s);
  (* The lane stays usable after the discard. *)
  let ran = ref false in
  Scheduler.enqueue s (fun () -> ran := true);
  Scheduler.quiesce s;
  check_bool "lane usable after discard" true !ran;
  Scheduler.shutdown s

(* [shutdown] with edits parked behind a failed predecessor must drain
   silently rather than deadlock waiting for commits that cannot run. *)
let test_shutdown_with_parked_edits () =
  let s = Scheduler.create ~workers:2 () in
  let gate = Atomic.make false in
  let parked = Atomic.make false in
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 0; lo = "a"; hi = "b" })
    ~input_bytes:0
    ~execute:(fun () ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        raise Boom);
  Scheduler.submit s
    ~key:(Scheduler.Compact { level = 4; lo = "a"; hi = "b" })
    ~input_bytes:4096
    ~execute:(fun () ->
        Atomic.set parked true;
        fun () -> ());
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  Atomic.set gate true;
  Scheduler.shutdown s;
  check_int "drained after shutdown" 0 (Scheduler.pending s);
  check_int "no unapplied bytes left" 0 (Scheduler.unapplied_bytes s)

(* ---------- version pinning ---------- *)

let test_version_pins () =
  let reg = Version.Pins.create_registry () in
  let dropped = ref [] in
  (* No reader: deletions run immediately. *)
  Version.Pins.advance reg;
  Version.Pins.defer reg (fun () -> dropped := "a" :: !dropped);
  Alcotest.(check (list string)) "no pin: immediate" [ "a" ] !dropped;
  (* A pinned version blocks deletions deferred after it... *)
  let p = Version.Pins.pin reg in
  Version.Pins.advance reg;
  Version.Pins.defer reg (fun () -> dropped := "b" :: !dropped);
  check_int "deferred while pinned" 1 (Version.Pins.deferred_count reg);
  Alcotest.(check (list string)) "not yet" [ "a" ] !dropped;
  (* ...and the last unpin releases them. *)
  Version.Pins.unpin p;
  check_int "released" 0 (Version.Pins.deferred_count reg);
  Alcotest.(check (list string)) "ran on unpin" [ "b"; "a" ] !dropped;
  (* A pin taken after the install does not block its deletions. *)
  Version.Pins.advance reg;
  Version.Pins.with_pin reg (fun () ->
      Version.Pins.defer reg (fun () -> dropped := "c" :: !dropped);
      check_int "current-version pin does not block" 0 (Version.Pins.deferred_count reg));
  Alcotest.(check (list string)) "ran inline" [ "c"; "b"; "a" ] !dropped

(* ---------- engine: background = inline ---------- *)

let small_config ~backend =
  {
    (Config.default) with
    write_buffer_size = 8 * 1024;
    level1_capacity = 32 * 1024;
    target_file_size = 16 * 1024;
    block_size = 1024;
    compaction = Policy.leveled ~size_ratio:4 ();
    compaction_backend = backend;
    wal_enabled = false;
  }

(* Same fixed mixed workload shape as the subcompaction determinism test:
   skewed updates, deletes, single-deletes, one range delete. *)
let run_workload db ~seed ~ops =
  let rng = Rng.create seed in
  for i = 1 to ops do
    let k = Rng.int rng 2000 in
    let key = Printf.sprintf "key%06d" k in
    (match Rng.int rng 10 with
    | 0 -> Db.delete db key
    | 1 ->
      let sk = Printf.sprintf "sd%06d" i in
      Db.put db ~key:sk (Printf.sprintf "sval-%06d" i);
      Db.single_delete db sk
    | _ -> Db.put db ~key (Printf.sprintf "val-%06d-%08d" k (Rng.int rng 1_000_000)));
    if i = ops / 2 then Db.range_delete db ~lo:"key000500" ~hi:"key000600"
  done;
  Db.flush db

let dump_strings db =
  List.map
    (fun (level, (e : Entry.t)) ->
      Printf.sprintf "L%d %s #%d %s %s" level e.key e.seqno
        (Entry.kind_to_string e.kind)
        (String.escaped e.value))
    (Db.dump_entries db)

let test_background_equals_inline () =
  let mk backend =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config:(small_config ~backend) ~dev () in
    run_workload db ~seed:0xBEEF ~ops:6000;
    Db.quiesce db;
    db
  in
  let inline = mk Config.Inline and bg = mk Config.Background in
  check_int "same seqno" (Db.last_seqno inline) (Db.last_seqno bg);
  (* One serialized maintenance lane performing the same op sequence:
     not just the same logical contents, the same physical entry stream. *)
  Alcotest.(check (list string)) "dumps identical" (dump_strings inline) (dump_strings bg);
  let s1 = Db.scan inline ~lo:"" ~hi:None () and s2 = Db.scan bg ~lo:"" ~hi:None () in
  Alcotest.(check (list (pair string string))) "scans identical" s1 s2;
  for k = 0 to 1999 do
    let key = Printf.sprintf "key%06d" k in
    Alcotest.(check (option string)) key (Db.get inline key) (Db.get bg key)
  done;
  (match Db.check_invariants bg with Ok () -> () | Error e -> Alcotest.fail e);
  (* Background mode never flushes synchronously inside a write. *)
  check_int "no synchronous stalls" 0 (Db.stats bg).Stats.write_stalls;
  check_bool "flushes happened in background" true ((Db.stats bg).Stats.flushes > 0);
  Db.close inline;
  Db.close bg

let test_background_self_determinism () =
  let mk () =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config:(small_config ~backend:Config.Background) ~dev () in
    run_workload db ~seed:4242 ~ops:4000;
    Db.quiesce db;
    db
  in
  let a = mk () and b = mk () in
  Alcotest.(check (list string)) "identical dumps across runs" (dump_strings a) (dump_strings b);
  Db.close a;
  Db.close b

(* The multi-worker determinism property: for any seed, the physical
   entry stream after quiesce is identical across Inline, one worker,
   and four workers — commits apply in enqueue order and picks replay
   the inline cascade whatever the interleaving of job execution. *)
let test_worker_count_determinism () =
  let dump ~config ~seed =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config ~dev () in
    run_workload db ~seed ~ops:1500;
    Db.quiesce db;
    let d = dump_strings db in
    Db.close db;
    d
  in
  for i = 0 to 19 do
    let seed = 0x5EED + (i * 7919) in
    let inline = dump ~config:(small_config ~backend:Config.Inline) ~seed in
    let w1 =
      dump
        ~config:{ (small_config ~backend:Config.Background) with compaction_workers = 1 }
        ~seed
    in
    let w4 =
      dump
        ~config:{ (small_config ~backend:Config.Background) with compaction_workers = 4 }
        ~seed
    in
    Alcotest.(check (list string)) (Printf.sprintf "seed %#x: workers=1 = inline" seed) inline w1;
    Alcotest.(check (list string)) (Printf.sprintf "seed %#x: workers=4 = inline" seed) inline w4
  done

(* ---------- concurrent readers vs background compaction ---------- *)

(* Reader domains hammer a committed stable prefix while the main domain
   keeps writing, driving background flushes and compactions that retire
   tables the readers may be probing. Version pinning must keep every
   probed file alive: a reader observing a deleted table would raise (or
   return garbage), so "always the right value" is the whole check.
   Runs under LSM_LOCKDEP=1 in CI, validating the lock order too. *)
let test_readers_during_background_compaction () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ~backend:Config.Background) ~dev () in
  let stable = 1500 in
  for i = 0 to stable - 1 do
    Db.put db ~key:(Printf.sprintf "s%06d" i) (Printf.sprintf "stable%06d" i)
  done;
  Db.flush db;
  let reader r =
    Domain.spawn (fun () ->
        let rng = Rng.create (r + 1) in
        let ok = ref true in
        for _ = 1 to 2500 do
          let i = Rng.int rng stable in
          let key = Printf.sprintf "s%06d" i in
          (match Db.get db key with
          | Some v -> if v <> Printf.sprintf "stable%06d" i then ok := false
          | None -> ok := false);
          if Rng.bernoulli rng 0.05 then begin
            let lo = Printf.sprintf "s%06d" i in
            match Db.scan db ~limit:5 ~lo ~hi:None () with
            | (k, _) :: _ -> if k <> lo then ok := false
            | [] -> ok := false
          end
        done;
        !ok)
  in
  let readers = List.init 3 reader in
  (* Meanwhile: churn through rotations, background flushes, compactions. *)
  let compactions_before = (Db.stats db).Stats.compactions in
  for i = 0 to 5999 do
    Db.put db ~key:(Printf.sprintf "w%06d" (i mod 700)) (Printf.sprintf "live%06d" i)
  done;
  let all_ok = List.for_all Domain.join readers in
  Db.quiesce db;
  check_bool "readers always saw the stable prefix" true all_ok;
  check_bool "background compactions actually ran" true
    ((Db.stats db).Stats.compactions > compactions_before);
  check_int "stable prefix intact" stable
    (List.length (Db.scan db ~lo:"s" ~hi:(Some "t") ()));
  (match Db.check_invariants db with Ok () -> () | Error e -> Alcotest.fail e);
  Db.close db

(* ---------- backpressure ---------- *)

let test_backpressure_validation () =
  let expect_invalid cfg =
    match Config.validate cfg with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid { Config.default with write_slowdown_trigger = 0 };
  (* Byte thresholds: anything below one block is meaningless. *)
  expect_invalid
    { Config.default with
      write_slowdown_trigger = Config.default.block_size - 1;
      write_stop_trigger = 1 lsl 20 };
  expect_invalid
    { Config.default with write_slowdown_trigger = 1 lsl 20; write_stop_trigger = 1 lsl 20 };
  expect_invalid
    { Config.default with write_slowdown_trigger = 1 lsl 20; write_stop_trigger = 1 lsl 16 };
  Config.validate
    { Config.default with
      write_slowdown_trigger = Config.default.block_size;
      write_stop_trigger = 2 * Config.default.block_size }

let test_backpressure_engages () =
  (* Hair-trigger thresholds: sustained writes must trip the slowdown
     path (and count it), yet the engine keeps accepting writes and ends
     logically intact — backpressure delays, it never deadlocks. *)
  let dev = Device.in_memory () in
  let config =
    (* One block of byte debt already slows, two stop — with an 8 KiB
       buffer every rotation lands well past both thresholds. *)
    { (small_config ~backend:Config.Background) with
      write_slowdown_trigger = 1024;
      write_stop_trigger = 2048 }
  in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 2999 do
    Db.put db ~key:(Printf.sprintf "k%06d" (i mod 400)) (String.make 64 'v')
  done;
  let st = Db.stats db in
  (* Whether a given rotation reads debt in the slowdown band or at the
     stop trigger depends on how far the lane has drained at that
     instant; only the sum is schedule-independent. *)
  check_bool "backpressure engaged" true
    (st.Stats.write_slowdowns + st.Stats.write_stops > 0);
  check_bool "latency histogram populated" true
    (Lsm_util.Histogram.count st.Stats.write_latency_ns = 3000);
  Db.quiesce db;
  Db.flush db;
  (* Settled debt is just whatever L0 holds below its compaction trigger:
     under level0_limit buffers' worth of bytes. *)
  check_bool "debt settles once quiesced" true (Db.backpressure_debt db <= 64 * 1024);
  check_int "all keys live" 400 (List.length (Db.scan db ~lo:"" ~hi:None ()));
  Db.close db

(* ---------- crash cycle under the background backend ---------- *)

(* Power loss with flushes/compactions running on the lane: every
   acknowledged (WAL-synced) put must survive reopen. The crash may fire
   inside a background job's device op or inside the foreground WAL
   append; both surface as [Device.Crashed] on the write path (directly
   or via the failure latch). *)
let test_background_crash_cycle () =
  let dev = Device.in_memory () in
  let config =
    { (small_config ~backend:Config.Background) with
      wal_enabled = true;
      wal_sync_every_write = true;
      write_buffer_size = 2048 }
  in
  let db = Db.open_db ~config ~dev () in
  Device.plan_crash dev ~tear:(Device.Tear_keep 40) (Device.After_syncs 120);
  let acked = ref [] in
  (try
     for i = 0 to 4999 do
       let key = Printf.sprintf "c%06d" i in
       Db.put db ~key (Printf.sprintf "cv%06d" i);
       acked := (key, Printf.sprintf "cv%06d" i) :: !acked
     done;
     Alcotest.fail "crash never fired"
   with Device.Crashed -> ());
  check_bool "made progress before the crash" true (List.length !acked > 0);
  Device.revive dev;
  let db2 = Db.open_db ~config ~dev () in
  List.iter
    (fun (k, v) -> Alcotest.(check (option string)) k (Some v) (Db.get db2 k))
    !acked;
  (match Db.check_invariants db2 with Ok () -> () | Error e -> Alcotest.fail e);
  (* The recovered store keeps working in background mode. *)
  Db.put db2 ~key:"post-crash" "alive";
  Db.flush db2;
  Alcotest.(check (option string)) "post-crash write" (Some "alive") (Db.get db2 "post-crash");
  Db.close db2;
  ignore db

let suite =
  [
    Alcotest.test_case "scheduler: runs jobs" `Quick test_scheduler_runs_jobs;
    Alcotest.test_case "scheduler: serialized lane" `Quick test_scheduler_serializes;
    Alcotest.test_case "scheduler: failure latch" `Quick test_scheduler_failure_latch;
    Alcotest.test_case "scheduler: wait_until" `Quick test_scheduler_wait_until;
    Alcotest.test_case "scheduler: non-conflicting tickets overlap" `Quick
      test_nonconflicting_tickets_overlap;
    Alcotest.test_case "scheduler: conflicting tickets serialize" `Quick
      test_conflicting_tickets_serialize;
    Alcotest.test_case "scheduler: failed predecessor discards parked edit" `Quick
      test_failed_predecessor_discards_parked;
    Alcotest.test_case "scheduler: shutdown with parked edits" `Quick
      test_shutdown_with_parked_edits;
    Alcotest.test_case "version pins: deferred deletion" `Quick test_version_pins;
    Alcotest.test_case "background = inline" `Slow test_background_equals_inline;
    Alcotest.test_case "background: reproducible" `Slow test_background_self_determinism;
    Alcotest.test_case "determinism across worker counts (20 seeds)" `Slow
      test_worker_count_determinism;
    Alcotest.test_case "stress: readers vs background compaction" `Slow
      test_readers_during_background_compaction;
    Alcotest.test_case "backpressure: config validation" `Quick test_backpressure_validation;
    Alcotest.test_case "backpressure: engages and settles" `Quick test_backpressure_engages;
    Alcotest.test_case "crash cycle under background backend" `Quick
      test_background_crash_cycle;
  ]
