(* R12 fixture: the blessed zero-copy idioms — arena blits, one-shot
   materialization outside loops. Parsed, never compiled. *)

let decode_record kbuf src pos shared unshared =
  (* extend the shared prefix in place: no per-record string *)
  Bytes.blit_string src pos kbuf shared unshared;
  shared + unshared

let materialize_once kbuf klen =
  (* a single copy when the caller takes the record is fine *)
  Bytes.sub_string kbuf 0 klen

let hoisted buf n =
  (* materialization hoisted out of the loop: fine *)
  let s = Bytes.to_string buf in
  let out = ref [] in
  for _ = 1 to n do
    out := s :: !out
  done;
  !out
