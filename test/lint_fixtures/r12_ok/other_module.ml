(* R12 fixture: the same allocation-heavy idioms in a module that is
   not on the block hot path — R12 is scoped by file name and must stay
   silent here. Parsed, never compiled. *)

let rebuild prev src pos shared unshared =
  String.sub prev 0 shared ^ String.sub src pos unshared

let join keys = String.concat "," keys

let drain buf n =
  let out = ref [] in
  for _ = 1 to n do
    out := Bytes.to_string buf :: !out
  done;
  !out
