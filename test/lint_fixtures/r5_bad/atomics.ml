(* Negative fixture for R5: read-modify-write split across Atomic.get
   and Atomic.set — a lost update when two domains interleave. *)

let bump c =
  let v = Atomic.get c in
  Atomic.set c (v + 1)

let bump_field t =
  let v = Atomic.get t.hits in
  Atomic.set t.hits (v + 1)
