(* Negative fixture for R4: module-level mutable state visible to every
   domain, plus an Obj.magic. *)

let table = Hashtbl.create 16

let counter = ref 0

let generation = Atomic.make 0

let sneak (x : int) : string = Obj.magic x
