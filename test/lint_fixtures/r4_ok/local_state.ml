(* Positive fixture for R4: mutable state is created per call (private
   to the caller), never at module level. *)

let fresh_counter () = ref 0

let fresh_table () = Hashtbl.create 16

let sum_with_acc xs =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) xs;
  !acc
