(* R7 fixture: untyped stringly errors in library code. Parsed, never
   compiled. *)

let decode_header data =
  if String.length data < 8 then failwith "short header";
  String.sub data 0 8

let check_magic data =
  if data <> "LSMMAGIC" then raise (Failure ("bad magic: " ^ data))

let qualified_form () = Stdlib.failwith "also flagged"
