(* R7 fixture: typed errors raised, Failure only *caught*. Parsed,
   never compiled. *)

let decode_header ~file data =
  if String.length data < 8 then
    raise (Lsm_util.Lsm_error.corruption ~file "short header");
  String.sub data 0 8

(* Catching Failure at a boundary (e.g. around int_of_string) is fine —
   the rule is about raising it. *)
let parse_count s = try int_of_string s with Failure _ -> 0
