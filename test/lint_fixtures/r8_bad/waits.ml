(* Negative fixture for R8: condition waits outside a while-predicate
   loop. A single [if] (or no guard at all) misses spurious wakeups and
   stolen signals — the predicate may be false again by the time the
   wait returns. *)

let wait_ready st =
  if not st.ready then Condition.wait st.cond st.m

let wait_drained t =
  if t.pending > 0 then Ordered_mutex.wait t.idle t.m
