(* R12 fixture: allocation-heavy idioms on the block hot path. Parsed,
   never compiled. *)

let decode_record prev src pos shared unshared =
  (* one finding: the classic double-copy key reconstruction *)
  String.sub prev 0 shared ^ String.sub src pos unshared

let join_restart_keys keys =
  (* one finding: a list plus a fresh string per record *)
  String.concat "" keys

let drain_keys buf n =
  let out = ref [] in
  for _ = 1 to n do
    (* one finding: a copy per iteration *)
    out := Bytes.to_string buf :: !out
  done;
  !out

let spin_until_key buf =
  let k = ref "" in
  while String.length !k = 0 do
    (* one finding: same idiom under a while loop *)
    k := Bytes.to_string buf
  done;
  !k
