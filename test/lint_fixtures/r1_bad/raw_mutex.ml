(* Negative fixture for R1: raw mutex calls, including the classic
   unlock-on-exception gap ([incr] standing in for code that raises). *)

let m = Mutex.create ()

let bump counter =
  Mutex.lock m;
  incr counter;
  Mutex.unlock m
