(* Negative fixture for R3: a module with no interface file. *)

type t = { mutable hidden : int }

let make () = { hidden = 0 }
