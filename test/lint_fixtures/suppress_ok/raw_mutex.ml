(* Fixture: explained per-site suppressions silence their rule. *)

let m = Mutex.create ()

let bump counter =
  (* lsm-lint: allow R1 — fixture: demonstrates an explained suppression *)
  Mutex.lock m;
  incr counter;
  (* lsm-lint: allow R1 — fixture: paired unlock of the suppressed lock *)
  Mutex.unlock m
