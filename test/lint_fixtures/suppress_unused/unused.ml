(* lsm-lint: allow R7 — historical: nothing here raises anymore *)
let safe () = 42
