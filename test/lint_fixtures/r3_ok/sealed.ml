(* Positive fixture for R3: sibling .mli seals the module. *)

type t = { mutable hidden : int }

let make () = { hidden = 0 }
