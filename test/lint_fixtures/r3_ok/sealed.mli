type t

val make : unit -> t
