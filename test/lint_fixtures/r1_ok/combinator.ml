(* Positive fixture for R1: the blessed combinator only. *)

let m = Lsm_util.Ordered_mutex.create ~rank:10 ~name:"fixture"

let bump counter = Lsm_util.Ordered_mutex.with_lock m (fun () -> incr counter)
