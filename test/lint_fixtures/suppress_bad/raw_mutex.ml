(* Fixture: a suppression without a reason is itself a finding (R0)
   and does not silence the underlying rule. *)

let m = Mutex.create ()

let bump counter =
  (* lsm-lint: allow R1 *)
  Mutex.lock m;
  incr counter
