let queue : (unit -> unit) list ref = ref []
let submit f = queue := f :: !queue
