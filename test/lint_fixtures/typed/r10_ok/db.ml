type read_ctx = { snap : int }

let capture () = { snap = 0 }
let with_pin f = f ()
