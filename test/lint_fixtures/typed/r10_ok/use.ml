(* The legal versions of every shape in r10_bad's leak.ml: the pinned
   value never outlives with_pin. *)

(* Derived plain data may escape; the pinned value itself does not. *)
let read () = Db.with_pin (fun () -> (Db.capture ()).Db.snap)

(* A ref local to the pin scope is fine. *)
let local_store () =
  Db.with_pin (fun () ->
      let ctx = ref None in
      ctx := Some (Db.capture ());
      match !ctx with Some c -> c.Db.snap | None -> 0)

(* Deferring a closure that captures only unpinned data is fine. *)
let defer_plain () =
  Db.with_pin (fun () ->
      let snap = (Db.capture ()).Db.snap in
      Scheduler.submit (fun () -> ignore snap);
      snap)
