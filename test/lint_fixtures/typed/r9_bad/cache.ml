(* Holds its own rank-30 lock and calls across the module boundary into
   Engine.kick, which acquires rank 10 — a descending edge no single
   file shows. lsm-lint must report the full chain
   Cache.refill -> Engine.kick. *)
module Ordered_mutex = Lsm_util.Ordered_mutex

type t = { m : Ordered_mutex.t; eng : Engine.t; mutable size : int }

let create eng = { m = Ordered_mutex.create ~rank:30 ~name:"fix.cache"; eng; size = 0 }

let refill t =
  Ordered_mutex.with_lock t.m (fun () ->
      t.size <- t.size + 1;
      Engine.kick t.eng)
