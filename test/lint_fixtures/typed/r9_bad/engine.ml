(* Low-ranked lock (rank 10): acquiring it while a higher-ranked lock
   is held is the inversion the fixture seeds. *)
module Ordered_mutex = Lsm_util.Ordered_mutex

type t = { m : Ordered_mutex.t; mutable kicks : int }

let create () = { m = Ordered_mutex.create ~rank:10 ~name:"fix.engine"; kicks = 0 }
let kick t = Ordered_mutex.with_lock t.m (fun () -> t.kicks <- t.kicks + 1)
