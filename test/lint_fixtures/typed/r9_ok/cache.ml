(* Same cross-module call under a held lock as r9_bad, but the callee's
   lock ranks above the held one — a legal ascending edge. *)
module Ordered_mutex = Lsm_util.Ordered_mutex

type t = { m : Ordered_mutex.t; eng : Engine.t; mutable size : int }

let create eng = { m = Ordered_mutex.create ~rank:10 ~name:"fix.cache"; eng; size = 0 }

let refill t =
  Ordered_mutex.with_lock t.m (fun () ->
      t.size <- t.size + 1;
      Engine.kick t.eng)
