module Ordered_mutex = Lsm_util.Ordered_mutex

type t = { m : Ordered_mutex.t; mutable kicks : int }

let create () = { m = Ordered_mutex.create ~rank:30 ~name:"fix.engine"; kicks = 0 }
let kick t = Ordered_mutex.with_lock t.m (fun () -> t.kicks <- t.kicks + 1)
