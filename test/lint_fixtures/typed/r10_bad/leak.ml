(* The three escape shapes R10 must catch. *)

(* 1: pinned value stored into module-level mutable state. *)
let last_ctx : Db.read_ctx option ref = ref None

let stash () =
  Db.with_pin (fun () ->
      last_ctx := Some (Db.capture ());
      0)

(* 2: closure handed to a deferred executor captures a pinned value —
   it runs after the pin is gone. *)
let bad_defer () =
  Db.with_pin (fun () ->
      let ctx = Db.capture () in
      Scheduler.submit (fun () -> ignore ctx.Db.snap);
      1)

(* 3: the pinned value itself returned past with_pin. *)
let bad_return () = Db.with_pin (fun () -> Db.capture ())
