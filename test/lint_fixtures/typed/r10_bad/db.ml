(* Minimal stand-in for the engine's pinned read view: canonicalizes to
   Db.read_ctx / Db.with_pin, which is what the escape pass keys on. *)
type read_ctx = { snap : int }

let capture () = { snap = 0 }
let with_pin f = f ()
