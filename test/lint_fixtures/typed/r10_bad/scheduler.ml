(* Deferred-executor stand-in: canonicalizes to Scheduler.submit. The
   closure is stored, to run later — after any pin the submitter held
   has been released. *)
let queue : (unit -> unit) list ref = ref []
let submit f = queue := f :: !queue
