(* Positive fixture for R6: concurrency goes through the pool, and
   joining a domain (as opposed to creating one) is fine anywhere. *)

let background pool f = Lsm_util.Domain_pool.submit pool f

let finish fut = Lsm_util.Domain_pool.await fut

let join d = Domain.join d
