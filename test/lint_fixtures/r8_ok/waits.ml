(* Positive fixture for R8: every wait sits in a while loop that
   re-checks its predicate, so a spurious wakeup just re-tests and
   sleeps again. *)

let wait_ready st =
  while not st.ready do
    Condition.wait st.cond st.m
  done

let wait_drained t =
  while t.pending > 0 || t.committing do
    Ordered_mutex.wait t.idle t.m
  done
