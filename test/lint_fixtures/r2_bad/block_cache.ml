(* Negative fixture for R2: device I/O syntactically inside a lock
   body of a cache module (both combinator spellings and both
   application styles). *)

let find t ~file ~off =
  with_lock t.m @@ fun () ->
  match lookup t (file, off) with
  | Some data -> data
  | None -> Device.read t.dev ~cls:`Read file ~off ~len:4096

let open_one t name =
  locked t (fun () ->
      let r = Sstable.open_reader ~cmp:t.cmp ~dev:t.dev ~cache:t.cache name in
      remember t name r;
      r)
