(* Positive fixture for R2: the lock body only touches in-memory
   structures; the device load happens outside the critical section. *)

let find t ~file ~off =
  match with_lock t.m (fun () -> lookup t (file, off)) with
  | Some data -> data
  | None ->
    let data = Device.read t.dev ~cls:`Read file ~off ~len:4096 in
    with_lock t.m (fun () -> insert t (file, off) data);
    data
