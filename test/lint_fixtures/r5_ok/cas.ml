(* Positive fixture for R5: the get/set pair is a documented CAS loop
   (retry until the read value is still current), and lone gets or sets
   are fine. *)

let rec bump c =
  let v = Atomic.get c in
  if not (Atomic.compare_and_set c v (v + 1)) then bump c

let read_only c = Atomic.get c

let reset_only c = Atomic.set c 0
