(* Negative fixture for R6: ad-hoc concurrency primitives that bypass
   Domain_pool's bounded width and future-based join discipline. *)

let background f = Domain.spawn f

let fire_and_forget f = ignore (Thread.create f ())
