(* Crash-recovery fault injection: scheduled device crashes and torn-tail
   semantics, WAL/manifest framing robustness (bad CRCs, truncated length
   fields, no resync past corruption), regressions for the three recovery
   data-loss bugs, and the power-loss sweep harness (crash at every sync
   boundary / device-op boundary / mid-append, reopen, check that exactly
   the acknowledged-durable prefix comes back). *)

open Lsm_storage
module Entry = Lsm_record.Entry
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Manifest = Lsm_core.Manifest
module Version = Lsm_core.Version
module Harness = Lsm_workload.Crash_harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_opt = Alcotest.(check (option string))

(* Extended sweep (nightly): LSM_CRASH_SWEEP=full widens seeds and drops
   the op-boundary stride. *)
let extended =
  match Sys.getenv_opt "LSM_CRASH_SWEEP" with
  | Some ("full" | "extended" | "1") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Raw-frame helpers                                                   *)
(* ------------------------------------------------------------------ *)

let batch1 = [ Entry.put ~key:"a" ~seqno:1 "1"; Entry.delete ~key:"b" ~seqno:2 ]
let batch2 = [ Entry.put ~key:"c" ~seqno:3 "33" ]
let batch3 = [ Entry.put ~key:"d" ~seqno:4 "444" ]

(* The raw bytes a WAL holding [batches] consists of, *without* the
   close-time seal frame — these helpers build crash-truncated franken
   logs, which must look unsealed so replay stays tolerant. *)
let wal_bytes batches =
  let dev = Device.in_memory () in
  let wal = Wal.create dev ~name:"scratch" in
  List.iter (Wal.append wal) batches;
  let len = Wal.size wal in
  Wal.close wal;
  Device.read dev ~cls:Io_stats.C_misc "scratch" ~off:0 ~len

let write_file dev name data =
  let w = Device.open_writer dev ~cls:Io_stats.C_misc name in
  Device.append w data;
  Device.close w

let replay_count dev name =
  let got = ref [] in
  let n = Wal.replay dev ~name (fun b -> got := b :: !got) in
  (n, List.rev !got)

(* ------------------------------------------------------------------ *)
(* WAL framing robustness                                              *)
(* ------------------------------------------------------------------ *)

let test_wal_truncated_length_field () =
  let dev = Device.in_memory () in
  (* A full frame, then only 6 bytes of the next frame's 8-byte header. *)
  let good = wal_bytes [ batch1 ] in
  let next = wal_bytes [ batch2 ] in
  write_file dev "wal" (good ^ String.sub next 0 6);
  let n, got = replay_count dev "wal" in
  check_int "stops before torn header" 1 n;
  check "prefix intact" true (got = [ batch1 ])

let test_wal_truncated_payload () =
  let dev = Device.in_memory () in
  (* Length field says more bytes than the file holds. *)
  let good = wal_bytes [ batch1 ] in
  let next = wal_bytes [ batch2 ] in
  write_file dev "wal" (good ^ String.sub next 0 (String.length next - 1));
  let n, got = replay_count dev "wal" in
  check_int "stops at short payload" 1 n;
  check "prefix intact" true (got = [ batch1 ])

let test_wal_no_resync_after_corrupt_frame () =
  let dev = Device.in_memory () in
  (* frame2's payload is corrupted; frame3 after it is perfectly valid.
     A torn tail cannot leave intact frames beyond the damage, so this
     is bit rot: replay must raise typed — never resynchronize, and
     never silently truncate acknowledged batches. *)
  let f1 = wal_bytes [ batch1 ] and f2 = wal_bytes [ batch2 ] and f3 = wal_bytes [ batch3 ] in
  let f2 = Bytes.of_string f2 in
  Bytes.set f2 (Bytes.length f2 - 1) '\x7f';
  write_file dev "wal" (f1 ^ Bytes.to_string f2 ^ f3);
  match replay_count dev "wal" with
  | _ -> Alcotest.fail "mid-log corruption with intact frames after must raise"
  | exception Lsm_util.Lsm_error.Error (Lsm_util.Lsm_error.Corruption _) -> ()

let test_wal_corrupt_first_frame_recovers_nothing () =
  let dev = Device.in_memory () in
  let f1 = Bytes.of_string (wal_bytes [ batch1 ]) in
  Bytes.set f1 8 '\xee';
  write_file dev "wal" (Bytes.to_string f1 ^ wal_bytes [ batch2 ]);
  (* The rotted head is complete and followed by an intact frame: typed
     corruption, not an empty-prefix recovery. *)
  match replay_count dev "wal" with
  | _ -> Alcotest.fail "corrupt head with intact frames after must raise"
  | exception Lsm_util.Lsm_error.Error (Lsm_util.Lsm_error.Corruption _) -> ()

(* ------------------------------------------------------------------ *)
(* Manifest recovery robustness                                        *)
(* ------------------------------------------------------------------ *)

(* Seal-free manifest image, for the same reason as [wal_bytes]. *)
let manifest_bytes edits =
  let dev = Device.in_memory () in
  let m = Manifest.create dev in
  List.iter (Manifest.log_edit m) edits;
  Manifest.close m;
  let len = Device.size dev Manifest.file_name - Framed_log.seal_size in
  Device.read dev ~cls:Io_stats.C_misc Manifest.file_name ~off:0 ~len

let edit w = { Version.added = []; removed = []; seqno_watermark = w }

let recover_watermark dev = (Manifest.recover dev).Version.last_seqno

let test_manifest_truncated_length_field () =
  let dev = Device.in_memory () in
  let good = manifest_bytes [ edit 5 ] in
  let next = manifest_bytes [ edit 9 ] in
  write_file dev Manifest.file_name (good ^ String.sub next 0 7);
  check_int "intact prefix only" 5 (recover_watermark dev)

let test_manifest_no_resync_after_corrupt_edit () =
  let dev = Device.in_memory () in
  let f1 = manifest_bytes [ edit 5 ] in
  let f2 = Bytes.of_string (manifest_bytes [ edit 9 ]) in
  Bytes.set f2 (Bytes.length f2 - 1) '\x01';
  let f3 = manifest_bytes [ edit 12 ] in
  write_file dev Manifest.file_name (f1 ^ Bytes.to_string f2 ^ f3);
  (* Intact edits beyond the rotten one: truncating here would drop
     tables and let open_db garbage-collect them as orphans. Typed. *)
  match recover_watermark dev with
  | _ -> Alcotest.fail "mid-log manifest corruption must raise"
  | exception Lsm_util.Lsm_error.Error (Lsm_util.Lsm_error.Corruption _) -> ()

let test_manifest_torn_tail_mid_frame () =
  let dev = Device.in_memory () in
  let f1 = manifest_bytes [ edit 5 ] in
  let f2 = manifest_bytes [ edit 9 ] in
  write_file dev Manifest.file_name (f1 ^ String.sub f2 0 (String.length f2 / 2));
  check_int "half an edit is no edit" 5 (recover_watermark dev)

(* ------------------------------------------------------------------ *)
(* Device fault injection                                              *)
(* ------------------------------------------------------------------ *)

let test_planned_crash_after_syncs () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_user_write "log" in
  Device.plan_crash dev (Device.After_syncs 2);
  Device.append w "a";
  Device.sync w;
  Device.append w "b";
  check "2nd sync fires the crash" true
    (try
       Device.sync w;
       false
     with Device.Crashed -> true);
  check "device reports crashed" true (Device.is_crashed dev);
  (* The fatal sync still made its bytes durable: crash strikes after. *)
  check_int "synced prefix survives" 2 (Device.size dev "log");
  check "mutations raise until revive" true
    (try
       Device.delete dev "log";
       false
     with Device.Crashed -> true);
  Device.revive dev;
  let w2 = Device.open_writer dev ~cls:Io_stats.C_misc "log2" in
  Device.close w2

let test_planned_crash_torn_tail () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_user_write "log" in
  Device.append w "durable";
  Device.sync w;
  Device.append w "-volatile";
  Device.crash ~tear:(Device.Tear_keep 4) dev;
  check_int "synced + 4 torn bytes" 11 (Device.size dev "log");
  check_str "torn tail is an intact prefix" "durable-vol"
    (Device.read dev ~cls:Io_stats.C_misc "log" ~off:0 ~len:11)

let test_planned_crash_corrupt_tail () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_user_write "log" in
  Device.append w "durable";
  Device.sync w;
  Device.append w "-volatile";
  Device.crash ~tear:(Device.Tear_corrupt 4) dev;
  check_int "synced + 4 scrambled bytes" 11 (Device.size dev "log");
  check_str "synced prefix untouched" "durable"
    (Device.read dev ~cls:Io_stats.C_misc "log" ~off:0 ~len:7);
  check "tail scrambled" true
    (Device.read dev ~cls:Io_stats.C_misc "log" ~off:7 ~len:4 <> "-vol")

let test_planned_crash_mid_append () =
  let dev = Device.in_memory () in
  let w = Device.open_writer dev ~cls:Io_stats.C_user_write "log" in
  Device.plan_crash dev ~tear:(Device.Tear_keep 100) (Device.After_bytes 4);
  check "append raises" true
    (try
       Device.append w "0123456789";
       false
     with Device.Crashed -> true);
  (* Only the prefix that "made it" survives, even with a generous tear. *)
  check_int "4 bytes reached the platter" 4 (Device.size dev "log");
  check_str "prefix of the torn write" "0123"
    (Device.read dev ~cls:Io_stats.C_misc "log" ~off:0 ~len:4)

let test_device_rename () =
  let dev = Device.in_memory () in
  write_file dev "a" "payload";
  write_file dev "b" "old";
  Device.rename dev "a" "b";
  check "src gone" false (Device.exists dev "a");
  check_str "dst replaced atomically" "payload"
    (Device.read dev ~cls:Io_stats.C_misc "b" ~off:0 ~len:7);
  Alcotest.check_raises "missing src" Not_found (fun () -> Device.rename dev "nope" "c")

(* ------------------------------------------------------------------ *)
(* Bugfix regressions                                                  *)
(* ------------------------------------------------------------------ *)

let sync_config =
  { Config.default with Config.write_buffer_size = 8 * 1024; wal_sync_every_write = true }

let key i = Printf.sprintf "k%04d" i
let value i = Printf.sprintf "val-%04d" i

(* db.ml fix 1: the WAL that recovery re-logs replayed batches into must
   be synced before the old WALs are deleted; otherwise a second crash
   right after open_db silently loses previously-acknowledged writes. *)
let test_second_crash_after_recovery_loses_nothing () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:sync_config ~dev () in
  for i = 0 to 49 do
    Db.put db ~key:(key i) (value i)
  done;
  Device.crash dev;
  let _db2 = Db.open_db ~config:sync_config ~dev () in
  (* Power fails again before the recovered db served a single write. *)
  Device.crash dev;
  let db3 = Db.open_db ~config:sync_config ~dev () in
  for i = 0 to 49 do
    if Db.get db3 (key i) <> Some (value i) then
      Alcotest.failf "key %d lost by the crash straight after recovery" i
  done

(* db.ml fix 2 (adjacent): a stale MANIFEST.tmp from a crashed rewrite
   must not confuse the next open, and open must leave MANIFEST present. *)
let test_stale_manifest_tmp_ignored () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:sync_config ~dev () in
  for i = 0 to 29 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  write_file dev Manifest.tmp_file_name "\x00\x01garbage from a dead rewrite";
  let db2 = Db.open_db ~config:sync_config ~dev () in
  for i = 0 to 29 do
    check_opt "survives stale tmp" (Some (value i)) (Db.get db2 (key i))
  done;
  check "MANIFEST exists after open" true (Device.exists dev Manifest.file_name);
  Db.close db2

(* db.ml fix 3: stray wal-prefixed names must neither abort open_db nor
   be replayed/deleted as if they were ours. *)
let test_stray_wal_names_skipped () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:sync_config ~dev () in
  for i = 0 to 19 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.close db;
  List.iter
    (fun n -> write_file dev n "not a real wal")
    [ "wal-1"; "wal-"; "wal-junk.log"; "wal-00x001.log"; "wal-backup" ];
  let db2 = Db.open_db ~config:sync_config ~dev () in
  for i = 0 to 19 do
    check_opt "data intact" (Some (value i)) (Db.get db2 (key i))
  done;
  List.iter
    (fun n -> check (n ^ " left alone") true (Device.exists dev n))
    [ "wal-1"; "wal-"; "wal-junk.log"; "wal-00x001.log"; "wal-backup" ];
  Db.close db2

(* Recovered wal counter must not collide with a surviving high-numbered
   log: reopen twice in a row, crashing in between, and check no
   "already open" or double-delete surprises. *)
let test_repeated_crash_reopen_cycles () =
  let dev = Device.in_memory () in
  let db = ref (Db.open_db ~config:sync_config ~dev ()) in
  for round = 0 to 4 do
    for i = 0 to 19 do
      Db.put !db ~key:(key ((round * 20) + i)) (value ((round * 20) + i))
    done;
    Device.crash dev;
    db := Db.open_db ~config:sync_config ~dev ()
  done;
  for i = 0 to 99 do
    if Db.get !db (key i) <> Some (value i) then Alcotest.failf "lost key %d in round-trips" i
  done

(* ------------------------------------------------------------------ *)
(* The power-loss sweep harness                                        *)
(* ------------------------------------------------------------------ *)

let report_check name (r : Harness.report) =
  if r.Harness.failures <> [] then
    Alcotest.failf "%s: %d/%d crash cycles violated the recovery invariant:\n%s" name
      (List.length r.failures) r.runs
      (String.concat "\n" (List.filteri (fun i _ -> i < 10) r.failures))

let ops_for seed = Harness.gen_ops ~seed ~count:200

let test_sweep_every_sync_point () =
  (* Every sync boundary of the workload, under clean truncation, an
     intact torn tail, and a scrambled torn tail; every cycle also takes
     a second crash immediately after recovery. *)
  let ops = ops_for 42 in
  let r = Harness.sweep_sync_points ~ops () in
  report_check "sync-point sweep" r;
  check "covers >= 200 sync-boundary crash points" true (r.Harness.points >= 200);
  check_int "three tear variants of each point" (r.Harness.points * 3) r.Harness.runs

let test_sweep_op_points () =
  let ops = ops_for 7 in
  let stride = if extended then 1 else 9 in
  report_check "op-point sweep" (Harness.sweep_op_points ~stride ~ops ())

let test_sweep_mid_append () =
  let ops = ops_for 11 in
  report_check "mid-append sweep" (Harness.sweep_mid_append ~samples:20 ~ops ())

let test_sweep_recovery_crashes () =
  let ops = ops_for 3 in
  let r = Harness.sweep_recovery_crashes ~ops () in
  report_check "recovery-crash sweep" r;
  check "recovery performs mutating ops to crash into" true (r.Harness.points > 0)

let test_sweep_extended_seeds () =
  if extended then
    List.iter
      (fun seed ->
        let ops = Harness.gen_ops ~seed ~count:400 in
        report_check
          (Printf.sprintf "extended sync sweep (seed %d)" seed)
          (Harness.sweep_sync_points ~ops ());
        report_check
          (Printf.sprintf "extended recovery sweep (seed %d)" seed)
          (Harness.sweep_recovery_crashes ~ops ()))
      [ 101; 202; 303 ]

let suite =
  [
    ("wal: truncated length field", `Quick, test_wal_truncated_length_field);
    ("wal: truncated payload", `Quick, test_wal_truncated_payload);
    ("wal: no resync after corrupt frame", `Quick, test_wal_no_resync_after_corrupt_frame);
    ("wal: corrupt first frame", `Quick, test_wal_corrupt_first_frame_recovers_nothing);
    ("manifest: truncated length field", `Quick, test_manifest_truncated_length_field);
    ("manifest: no resync after corrupt edit", `Quick, test_manifest_no_resync_after_corrupt_edit);
    ("manifest: torn tail mid-frame", `Quick, test_manifest_torn_tail_mid_frame);
    ("device: planned crash after Nth sync", `Quick, test_planned_crash_after_syncs);
    ("device: torn tail retained", `Quick, test_planned_crash_torn_tail);
    ("device: corrupt torn tail", `Quick, test_planned_crash_corrupt_tail);
    ("device: mid-append crash", `Quick, test_planned_crash_mid_append);
    ("device: atomic rename", `Quick, test_device_rename);
    ("db: second crash after recovery", `Quick, test_second_crash_after_recovery_loses_nothing);
    ("db: stale MANIFEST.tmp ignored", `Quick, test_stale_manifest_tmp_ignored);
    ("db: stray wal names skipped", `Quick, test_stray_wal_names_skipped);
    ("db: repeated crash/reopen cycles", `Quick, test_repeated_crash_reopen_cycles);
    ("sweep: every sync boundary x 3 tears", `Slow, test_sweep_every_sync_point);
    ("sweep: device-op boundaries", `Slow, test_sweep_op_points);
    ("sweep: mid-append torn frames", `Slow, test_sweep_mid_append);
    ("sweep: crashes during recovery", `Slow, test_sweep_recovery_crashes);
    ("sweep: extended (LSM_CRASH_SWEEP=full)", `Slow, test_sweep_extended_seeds);
  ]
