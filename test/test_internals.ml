(* White-box tests for the engine's trickiest internals: the MVCC
   snapshot-stripe logic of the compaction merge filter, and the
   version/manifest machinery. *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Codec = Lsm_util.Codec
module Device = Lsm_storage.Device
module Table_meta = Lsm_sstable.Table_meta
open Lsm_core

let cmp = Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let e ?(kind = Entry.Put) ?(value = "") key seqno = { Entry.key; seqno; kind; value }

let filtered ?(snapshots = []) ?(bottom = false) ?(rds = []) entries =
  let sorted = List.sort (Entry.compare cmp) entries in
  Iter.to_list
    (Merge_filter.filtered ~cmp ~snapshots ~bottom ~range_tombstones:rds
       (Iter.of_sorted_list cmp sorted))

(* ---------- stripe function ---------- *)

let test_stripe_of () =
  let snaps = [| 10; 20; 30 |] in
  let s = Merge_filter.stripe_of ~snapshots:snaps in
  check_int "below first" 0 (s 5);
  check_int "at snapshot boundary" 0 (s 10);
  check_int "between 10 and 20" 1 (s 11);
  check_int "at 20" 1 (s 20);
  check_int "above all" 3 (s 31);
  (* same stripe <=> no snapshot separates *)
  check "5,10 same stripe" true (s 5 = s 10);
  check "10,11 different stripes" true (s 10 <> s 11)

(* ---------- shadowing ---------- *)

let test_shadowed_versions_dropped () =
  let out = filtered [ e "k" 3 ~value:"old"; e "k" 7 ~value:"new" ] in
  check_int "one survivor" 1 (List.length out);
  Alcotest.(check string) "newest survives" "new" (List.hd out).Entry.value

let test_snapshot_preserves_old_version () =
  (* A snapshot at 5 separates the versions: both must survive. *)
  let out = filtered ~snapshots:[ 5 ] [ e "k" 3 ~value:"old"; e "k" 7 ~value:"new" ] in
  check_int "both survive" 2 (List.length out)

let test_same_stripe_within_snapshot_dropped () =
  (* Snapshot at 10: versions 3 and 7 share the old stripe; only 7 kept. *)
  let out =
    filtered ~snapshots:[ 10 ]
      [ e "k" 3 ~value:"a"; e "k" 7 ~value:"b"; e "k" 12 ~value:"c" ]
  in
  check_int "two survive" 2 (List.length out);
  check "7 and 12 survive" true
    (List.map (fun x -> x.Entry.seqno) out = [ 12; 7 ])

let test_distinct_keys_untouched () =
  let out = filtered [ e "a" 1; e "b" 2; e "c" 3 ] in
  check_int "all kept" 3 (List.length out)

(* ---------- tombstones ---------- *)

let test_delete_kept_above_bottom () =
  let out = filtered ~bottom:false [ e "k" 5 ~kind:Entry.Delete ] in
  check_int "tombstone retained" 1 (List.length out)

let test_delete_dropped_at_bottom () =
  let out = filtered ~bottom:true [ e "k" 5 ~kind:Entry.Delete; e "k" 2 ~value:"v" ] in
  check_int "tombstone and victim gone" 0 (List.length out)

let test_delete_at_bottom_blocked_by_snapshot () =
  (* A snapshot below the delete still needs the old put. *)
  let out =
    filtered ~bottom:true ~snapshots:[ 3 ]
      [ e "k" 5 ~kind:Entry.Delete; e "k" 2 ~value:"v" ]
  in
  check_int "put survives for the snapshot" 2 (List.length out);
  check "delete also survives (masks for latest readers)" true
    (List.exists (fun x -> x.Entry.kind = Entry.Delete) out)

let test_single_delete_cancels_put () =
  let out =
    filtered [ e "k" 5 ~kind:Entry.Single_delete; e "k" 2 ~value:"v"; e "other" 1 ]
  in
  check_int "pair annihilated, other kept" 1 (List.length out);
  Alcotest.(check string) "other" "other" (List.hd out).Entry.key

let test_single_delete_not_cancelling_across_snapshot () =
  let out =
    filtered ~snapshots:[ 3 ] [ e "k" 5 ~kind:Entry.Single_delete; e "k" 2 ~value:"v" ]
  in
  check_int "both kept across the snapshot boundary" 2 (List.length out)

(* ---------- range tombstones ---------- *)

let rd lo hi seqno = Entry.range_delete ~start_key:lo ~end_key:hi ~seqno

let test_range_tombstone_drops_covered () =
  let tomb = rd "b" "d" 10 in
  let out =
    filtered ~rds:[ tomb ]
      [ tomb; e "a" 1 ~value:"keep"; e "b" 2 ~value:"dead"; e "c" 3 ~value:"dead"; e "d" 4 ~value:"keep" ]
  in
  let keys = List.map (fun x -> x.Entry.key) out in
  check "a kept" true (List.mem "a" keys);
  check "b dropped" false (List.exists (fun x -> x.Entry.key = "b" && x.Entry.kind = Entry.Put) out);
  check "c dropped" false (List.exists (fun x -> x.Entry.key = "c" && x.Entry.kind = Entry.Put) out);
  check "d kept (exclusive end)" true (List.mem "d" keys);
  check "tombstone itself kept above bottom" true
    (List.exists (fun x -> x.Entry.kind = Entry.Range_delete) out)

let test_range_tombstone_spares_newer () =
  let tomb = rd "a" "z" 5 in
  let out = filtered ~rds:[ tomb ] [ tomb; e "k" 9 ~value:"newer-than-rd" ] in
  check "newer entry survives" true
    (List.exists (fun x -> x.Entry.kind = Entry.Put) out)

let test_range_tombstone_respects_snapshot () =
  (* Snapshot at 3 separates the rd (seq 5) from the victim (seq 2):
     the victim must survive for the snapshot reader. *)
  let tomb = rd "a" "z" 5 in
  let out = filtered ~snapshots:[ 3 ] ~rds:[ tomb ] [ tomb; e "k" 2 ~value:"v" ] in
  check "victim survives across snapshot" true
    (List.exists (fun x -> x.Entry.kind = Entry.Put) out)

let test_range_tombstone_retired_at_bottom () =
  let tomb = rd "a" "z" 5 in
  let out = filtered ~bottom:true ~rds:[ tomb ] [ tomb; e "k" 2 ~value:"v" ] in
  check_int "everything retired" 0 (List.length out)

(* ---------- merge operands ---------- *)

let test_merge_chain_preserved () =
  let out =
    filtered [ e "k" 5 ~kind:Entry.Merge ~value:"+2"; e "k" 3 ~kind:Entry.Merge ~value:"+1";
               e "k" 1 ~value:"base" ]
  in
  check_int "whole chain survives" 3 (List.length out)

let test_put_shadows_merge_history () =
  let out =
    filtered [ e "k" 9 ~value:"final"; e "k" 5 ~kind:Entry.Merge ~value:"+2"; e "k" 1 ~value:"base" ]
  in
  check_int "put discards older history" 1 (List.length out);
  Alcotest.(check string) "final" "final" (List.hd out).Entry.value

(* ---------- version ---------- *)

let meta id lo hi =
  {
    Table_meta.file_id = id;
    file_name = Printf.sprintf "%d.sst" id;
    size = 100;
    entries = 10;
    point_tombstones = 0;
    range_tombstones = 0;
    min_key = lo;
    max_key = hi;
    min_seqno = 0;
    max_seqno = 0;
    created_at = 0;
    data_bytes = 100;
    ecc = None;
  }

let test_version_apply_add_remove () =
  let v = Version.empty in
  let v =
    Version.apply v
      { Version.added = [ (1, 7, meta 1 "a" "f"); (1, 7, meta 2 "g" "m") ]; removed = [];
        seqno_watermark = 5 }
  in
  check_int "one run" 1 (Version.run_count v 1);
  check_int "two files" 2 (Version.file_count v);
  check_int "bytes" 200 (Version.level_bytes v 1);
  check_int "next file id bumped" 3 v.Version.next_file_id;
  check_int "next group bumped" 8 v.Version.next_group;
  check_int "seqno watermark" 5 v.Version.last_seqno;
  let v2 =
    Version.apply v
      { Version.added = [ (2, 9, meta 3 "a" "z") ]; removed = [ 1 ]; seqno_watermark = 6 }
  in
  check_int "file 1 removed" 2 (Version.file_count v2);
  check "find moved file" true (Version.find_file v2 3 = Some (2, 9, meta 3 "a" "z"));
  check "old version untouched (persistent)" true (Version.file_count v = 2)

let test_version_remove_unknown_rejected () =
  check "unknown id raises" true
    (try
       ignore (Version.apply Version.empty { Version.added = []; removed = [ 42 ]; seqno_watermark = 0 });
       false
     with Invalid_argument _ -> true)

let test_version_runs_newest_first () =
  let v =
    List.fold_left
      (fun v (g, id) ->
        Version.apply v
          { Version.added = [ (1, g, meta id "a" "b") ]; removed = []; seqno_watermark = 0 })
      Version.empty
      [ (3, 1); (9, 2); (5, 3) ]
  in
  let groups = List.map (fun r -> r.Version.group) (Version.level_runs v 1) in
  Alcotest.(check (list int)) "descending groups" [ 9; 5; 3 ] groups

let test_version_invariant_detects_overlap () =
  let v =
    Version.apply Version.empty
      { Version.added = [ (1, 7, meta 1 "a" "m"); (1, 7, meta 2 "g" "z") ]; removed = [];
        seqno_watermark = 0 }
  in
  check "overlap detected" true
    (match Version.check_invariants ~cmp v with Error _ -> true | Ok () -> false)

let test_version_edit_roundtrip () =
  let edit =
    { Version.added = [ (1, 7, meta 1 "a" "f"); (3, 2, meta 9 "x" "z") ]; removed = [ 4; 5 ];
      seqno_watermark = 123 }
  in
  let b = Buffer.create 64 in
  Version.encode_edit b edit;
  let got = Version.decode_edit (Codec.reader (Buffer.contents b)) in
  check "roundtrip" true (got = edit)

(* ---------- manifest ---------- *)

let test_manifest_recover_replays_edits () =
  let dev = Device.in_memory () in
  let m = Manifest.create dev in
  Manifest.log_edit m
    { Version.added = [ (1, 7, meta 1 "a" "f") ]; removed = []; seqno_watermark = 1 };
  Manifest.log_edit m
    { Version.added = [ (2, 8, meta 2 "g" "z") ]; removed = [ 1 ]; seqno_watermark = 2 };
  Manifest.close m;
  let v = Manifest.recover dev in
  check_int "one live file" 1 (Version.file_count v);
  check "file 2 at level 2" true (Version.find_file v 2 <> None);
  check_int "watermark" 2 v.Version.last_seqno

let test_manifest_missing_is_empty () =
  let v = Manifest.recover (Device.in_memory ()) in
  check_int "empty" 0 (Version.file_count v)

let test_manifest_torn_tail_ignored () =
  let dev = Device.in_memory () in
  let m = Manifest.create dev in
  Manifest.log_edit m
    { Version.added = [ (1, 7, meta 1 "a" "f") ]; removed = []; seqno_watermark = 1 };
  Manifest.close m;
  (* Append garbage: recovery must keep the intact prefix. *)
  let len = Device.size dev Manifest.file_name in
  let data = Device.read dev ~cls:Lsm_storage.Io_stats.C_misc Manifest.file_name ~off:0 ~len in
  Device.delete dev Manifest.file_name;
  let w = Device.open_writer dev ~cls:Lsm_storage.Io_stats.C_misc Manifest.file_name in
  Device.append w (data ^ "\xde\xad\xbe\xef garbage");
  Device.close w;
  let v = Manifest.recover dev in
  check_int "intact prefix recovered" 1 (Version.file_count v)

(* ---------- randomized stripe-correctness property ---------- *)

(* For arbitrary version stacks and snapshot sets, filtering must preserve
   what every snapshot (and the latest reader) observes. *)
let prop_merge_filter_preserves_visibility =
  QCheck.Test.make ~name:"merge filter preserves all snapshot views" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 12) (pair (int_bound 2) (pair (int_bound 30) bool)))
        (list_of_size Gen.(0 -- 3) (int_bound 30)))
    (fun (versions, snapshots) ->
      (* unique seqnos per key, bool = is_delete *)
      let entries =
        List.mapi
          (fun i (k, (s, is_del)) ->
            let key = Printf.sprintf "k%d" k in
            let seqno = (s * 20) + i + 1 in
            if is_del then e key seqno ~kind:Entry.Delete else e key seqno ~value:(string_of_int seqno))
          versions
      in
      (* de-duplicate identical (key,seqno) pairs *)
      let entries =
        List.sort_uniq (fun a b -> compare (a.Entry.key, a.Entry.seqno) (b.Entry.key, b.Entry.seqno)) entries
      in
      let out = filtered ~snapshots ~bottom:false entries in
      let visible_at snap es key =
        List.filter (fun x -> x.Entry.key = key && x.Entry.seqno <= snap) es
        |> List.fold_left
             (fun acc x ->
               match acc with
               | Some (b : Entry.t) when b.Entry.seqno >= x.Entry.seqno -> acc
               | _ -> Some x)
             None
        |> Option.map (fun x -> (x.Entry.kind, x.Entry.value))
      in
      let keys = List.sort_uniq compare (List.map (fun x -> x.Entry.key) entries) in
      let views = max_int :: snapshots in
      List.for_all
        (fun snap ->
          List.for_all (fun k -> visible_at snap entries k = visible_at snap out k) keys)
        views)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("stripe function", `Quick, test_stripe_of);
    ("shadowed versions dropped", `Quick, test_shadowed_versions_dropped);
    ("snapshot preserves old version", `Quick, test_snapshot_preserves_old_version);
    ("same-stripe shadowing under snapshot", `Quick, test_same_stripe_within_snapshot_dropped);
    ("distinct keys untouched", `Quick, test_distinct_keys_untouched);
    ("delete kept above bottom", `Quick, test_delete_kept_above_bottom);
    ("delete dropped at bottom", `Quick, test_delete_dropped_at_bottom);
    ("delete at bottom blocked by snapshot", `Quick, test_delete_at_bottom_blocked_by_snapshot);
    ("single delete cancels put", `Quick, test_single_delete_cancels_put);
    ("single delete respects snapshot", `Quick, test_single_delete_not_cancelling_across_snapshot);
    ("range tombstone drops covered", `Quick, test_range_tombstone_drops_covered);
    ("range tombstone spares newer", `Quick, test_range_tombstone_spares_newer);
    ("range tombstone respects snapshot", `Quick, test_range_tombstone_respects_snapshot);
    ("range tombstone retired at bottom", `Quick, test_range_tombstone_retired_at_bottom);
    ("merge chain preserved", `Quick, test_merge_chain_preserved);
    ("put shadows merge history", `Quick, test_put_shadows_merge_history);
    ("version apply add/remove", `Quick, test_version_apply_add_remove);
    ("version rejects unknown removal", `Quick, test_version_remove_unknown_rejected);
    ("version runs newest first", `Quick, test_version_runs_newest_first);
    ("version invariant detects overlap", `Quick, test_version_invariant_detects_overlap);
    ("version edit roundtrip", `Quick, test_version_edit_roundtrip);
    ("manifest recover", `Quick, test_manifest_recover_replays_edits);
    ("manifest missing = empty", `Quick, test_manifest_missing_is_empty);
    ("manifest torn tail ignored", `Quick, test_manifest_torn_tail_ignored);
    qt prop_merge_filter_preserves_visibility;
  ]
